//! The diagnostics substrate: stable codes, severities, source spans, and
//! the [`Report`] container every checker returns.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The artifact is wrong: an illegal schedule or malformed IR.
    Error,
    /// The artifact is legal but suspicious or wasteful.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Stable diagnostic codes. `E0xx` are IR lint errors, `W0xx` IR lint
/// warnings, `E1xx` schedule-verification errors, `W1xx` schedule
/// warnings, `E2xx` tape translation-validation errors, `W2xx` tape
/// value-range/eligibility warnings. Codes never change meaning; see
/// `docs/lint_codes.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// E001: an operand names a value not defined before its use.
    UndefinedValue,
    /// E002: operand or result types violate the opcode's typing rule.
    TypeMismatch,
    /// E003: unknown opcode mnemonic.
    UnknownOpcode,
    /// E004: value ids are not dense program-order (`v0, v1, ...`).
    NonDenseIds,
    /// E005: an operand names an op that produces no value (a write).
    NoValueOperand,
    /// E006: a recurrence is unbound, rebound, or bound to a non-value.
    RecurrenceBinding,
    /// E007: a recurrence next-chain cycles through recurrences only,
    /// carrying a zero-latency dependence with no scheduled producer.
    DegenerateRecurrence,
    /// E008: an op's scheduling class is missing from the verifier's
    /// independent latency table.
    MissingLatency,
    /// E009: a stream access names an undeclared stream.
    UnknownStream,
    /// E010: a line is syntactically malformed (bad literal, missing
    /// tokens, stray directive).
    Syntax,
    /// W001: a side-effect-free value is never used.
    DeadValue,
    /// W002: a declared input stream is never read.
    UnusedInput,
    /// W003: a declared output stream is never written.
    UnusedOutput,
    /// E101: a modulo slot uses more functional units of one kind than the
    /// machine provides.
    SlotOversubscribed,
    /// E102: a dependence edge is violated:
    /// `t(to) + II*distance < t(from) + latency`.
    DependenceViolated,
    /// E103: the II is below the independently recomputed
    /// `max(ResMII, RecMII)`.
    IiBelowMii,
    /// E104: schedule shape mismatch (times/nodes length, edge endpoints
    /// out of range).
    ShapeMismatch,
    /// E105: the initiation interval is zero.
    ZeroIi,
    /// E106: a node or data edge carries a latency that disagrees with the
    /// verifier's independent latency table for this machine.
    LatencyDrift,
    /// W101: the schedule's steady-state MaxLive exceeds the cluster's LRF
    /// register capacity.
    RegisterPressure,
    /// E201: a tape output word's expression differs from the kernel
    /// reference (e.g. swapped non-commutative float operands).
    TapeWriteMismatch,
    /// E202: the tape writes a different set of output words than the
    /// kernel (missing, extra, or duplicated).
    TapeWriteCoverage,
    /// E203: the tape's ordered potential-fault sites diverge from program
    /// order, so some input would report a different first error.
    TapeErrorOrder,
    /// E204: a tape recurrence slot's initial bits or feed expression
    /// differ from the kernel's binding.
    TapeRecurrence,
    /// E205: the tape violates the SSA slot layout (operand at or above
    /// its destination, redefined slot, malformed pair).
    TapeOperandOrder,
    /// E206: a tape instruction reads a never-defined slot.
    TapeUndefinedSlot,
    /// E207: a fallible or per-iteration instruction was hoisted into the
    /// once-per-call prologue.
    TapeHoistedEffect,
    /// E208: a strip/batch eligibility flag claims more than the shared
    /// soundness predicates re-derive.
    TapeFlagOverclaim,
    /// E209: a conditional stream's (predicate, source) sequence diverges
    /// from the kernel.
    TapeCondStream,
    /// E210: a planar-layout access is inconsistent with the tape's plane
    /// mapping.
    TapePlanarMap,
    /// E211: a stream access disagrees with the stream declaration
    /// (index, record width, offset, conditionality).
    TapeAccessShape,
    /// W201: the tape forgoes a strip/batch eligibility the predicates
    /// re-derive.
    TapeMissedEligibility,
    /// W202: a tape bounds check is provably dead (always in range).
    TapeDeadCheck,
    /// W203: a tape access provably faults on every input reaching it.
    TapeStaticFault,
}

impl Code {
    /// All codes, in catalog order.
    pub const ALL: [Code; 34] = [
        Code::UndefinedValue,
        Code::TypeMismatch,
        Code::UnknownOpcode,
        Code::NonDenseIds,
        Code::NoValueOperand,
        Code::RecurrenceBinding,
        Code::DegenerateRecurrence,
        Code::MissingLatency,
        Code::UnknownStream,
        Code::Syntax,
        Code::DeadValue,
        Code::UnusedInput,
        Code::UnusedOutput,
        Code::SlotOversubscribed,
        Code::DependenceViolated,
        Code::IiBelowMii,
        Code::ShapeMismatch,
        Code::ZeroIi,
        Code::LatencyDrift,
        Code::RegisterPressure,
        Code::TapeWriteMismatch,
        Code::TapeWriteCoverage,
        Code::TapeErrorOrder,
        Code::TapeRecurrence,
        Code::TapeOperandOrder,
        Code::TapeUndefinedSlot,
        Code::TapeHoistedEffect,
        Code::TapeFlagOverclaim,
        Code::TapeCondStream,
        Code::TapePlanarMap,
        Code::TapeAccessShape,
        Code::TapeMissedEligibility,
        Code::TapeDeadCheck,
        Code::TapeStaticFault,
    ];

    /// The stable code string, e.g. `"E102"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::UndefinedValue => "E001",
            Code::TypeMismatch => "E002",
            Code::UnknownOpcode => "E003",
            Code::NonDenseIds => "E004",
            Code::NoValueOperand => "E005",
            Code::RecurrenceBinding => "E006",
            Code::DegenerateRecurrence => "E007",
            Code::MissingLatency => "E008",
            Code::UnknownStream => "E009",
            Code::Syntax => "E010",
            Code::DeadValue => "W001",
            Code::UnusedInput => "W002",
            Code::UnusedOutput => "W003",
            Code::SlotOversubscribed => "E101",
            Code::DependenceViolated => "E102",
            Code::IiBelowMii => "E103",
            Code::ShapeMismatch => "E104",
            Code::ZeroIi => "E105",
            Code::LatencyDrift => "E106",
            Code::RegisterPressure => "W101",
            Code::TapeWriteMismatch => "E201",
            Code::TapeWriteCoverage => "E202",
            Code::TapeErrorOrder => "E203",
            Code::TapeRecurrence => "E204",
            Code::TapeOperandOrder => "E205",
            Code::TapeUndefinedSlot => "E206",
            Code::TapeHoistedEffect => "E207",
            Code::TapeFlagOverclaim => "E208",
            Code::TapeCondStream => "E209",
            Code::TapePlanarMap => "E210",
            Code::TapeAccessShape => "E211",
            Code::TapeMissedEligibility => "W201",
            Code::TapeDeadCheck => "W202",
            Code::TapeStaticFault => "W203",
        }
    }

    /// The severity this code always carries.
    pub fn severity(&self) -> Severity {
        match self.as_str().as_bytes()[0] {
            b'E' => Severity::Error,
            _ => Severity::Warning,
        }
    }

    /// One-line catalog description.
    pub fn description(&self) -> &'static str {
        match self {
            Code::UndefinedValue => "operand uses a value not defined before it",
            Code::TypeMismatch => "operand or result types violate the opcode's typing rule",
            Code::UnknownOpcode => "unknown opcode mnemonic",
            Code::NonDenseIds => "value ids must be dense in program order",
            Code::NoValueOperand => "operand names an op that produces no value",
            Code::RecurrenceBinding => "recurrence unbound, rebound, or bound improperly",
            Code::DegenerateRecurrence => "recurrence next-chain cycles through recurrences only",
            Code::MissingLatency => "scheduling class missing from the verifier's latency table",
            Code::UnknownStream => "stream access names an undeclared stream",
            Code::Syntax => "malformed line",
            Code::DeadValue => "side-effect-free value is never used",
            Code::UnusedInput => "declared input stream is never read",
            Code::UnusedOutput => "declared output stream is never written",
            Code::SlotOversubscribed => "modulo slot oversubscribes a functional-unit kind",
            Code::DependenceViolated => "dependence edge violated by the schedule",
            Code::IiBelowMii => "II below independently recomputed max(ResMII, RecMII)",
            Code::ShapeMismatch => "schedule shape mismatch (lengths or edge endpoints)",
            Code::ZeroIi => "initiation interval is zero",
            Code::LatencyDrift => "latency disagrees with the verifier's independent table",
            Code::RegisterPressure => "steady-state MaxLive exceeds LRF register capacity",
            Code::TapeWriteMismatch => "tape output expression differs from the kernel reference",
            Code::TapeWriteCoverage => "tape writes a different set of output words",
            Code::TapeErrorOrder => "tape potential-fault sites diverge from program order",
            Code::TapeRecurrence => "tape recurrence init or feed differs from the kernel",
            Code::TapeOperandOrder => "tape violates the SSA slot layout",
            Code::TapeUndefinedSlot => "tape instruction reads a never-defined slot",
            Code::TapeHoistedEffect => "fallible or per-iteration instruction hoisted to prologue",
            Code::TapeFlagOverclaim => "eligibility flag claims more than the predicates derive",
            Code::TapeCondStream => "conditional stream sequence diverges from the kernel",
            Code::TapePlanarMap => "planar-layout access inconsistent with the plane mapping",
            Code::TapeAccessShape => "stream access disagrees with the stream declaration",
            Code::TapeMissedEligibility => "tape forgoes a provable strip/batch eligibility",
            Code::TapeDeadCheck => "bounds check is provably dead (always in range)",
            Code::TapeStaticFault => "access provably faults on every input reaching it",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A 1-based source position in a textual kernel listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
}

impl Span {
    /// A span at `line`, column 1.
    pub fn line(line: u32) -> Self {
        Self { line, col: 1 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One finding: a code, a human-readable message, and optionally where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// What went wrong, with concrete values.
    pub message: String,
    /// Source position, when the checked artifact has one.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// The severity (determined by the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity(), self.code, self.message)?;
        if let Some(span) = self.span {
            write!(f, " at {span}")?;
        }
        Ok(())
    }
}

/// The outcome of one verification or lint pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a diagnostic.
    pub fn push(&mut self, code: Code, message: impl Into<String>, span: Option<Span>) {
        self.diags.push(Diagnostic {
            code,
            message: message.into(),
            span,
        });
    }

    /// All diagnostics, in the order found.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// True when at least one error-severity diagnostic was found.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diags.len() - self.error_count()
    }

    /// True when some diagnostic carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Number of diagnostics carrying `code`.
    pub fn count(&self, code: Code) -> usize {
        self.diags.iter().filter(|d| d.code == code).count()
    }

    /// Merges `other`'s diagnostics into this report.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diags.is_empty() {
            return writeln!(f, "clean");
        }
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().len() == 4);
        }
    }

    #[test]
    fn severity_follows_prefix() {
        assert_eq!(Code::SlotOversubscribed.severity(), Severity::Error);
        assert_eq!(Code::DeadValue.severity(), Severity::Warning);
        assert_eq!(Code::RegisterPressure.severity(), Severity::Warning);
    }

    #[test]
    fn report_counts_by_severity() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.push(Code::DependenceViolated, "x", None);
        r.push(Code::DeadValue, "y", Some(Span::line(3)));
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has(Code::DeadValue));
        assert!(!r.has(Code::ZeroIi));
        assert_eq!(r.count(Code::DependenceViolated), 1);
    }

    #[test]
    fn display_names_code_and_span() {
        let mut r = Report::new();
        r.push(
            Code::UndefinedValue,
            "v9 is not defined",
            Some(Span { line: 4, col: 11 }),
        );
        let s = r.to_string();
        assert!(s.contains("error[E001]"), "{s}");
        assert!(s.contains("4:11"), "{s}");
    }
}
