//! Negative fixtures: every diagnostic code must demonstrably fire, with
//! the exact code asserted — a verifier that cannot reject anything
//! verifies nothing.

use stream_ir::{KernelBuilder, Scalar, Ty};
use stream_machine::{Machine, OpClass};
use stream_verify::{
    lint_kernel, lint_kernel_with_table, lint_text, verify_schedule, Code, DepEdge, DepGraph,
    DepKind, LatencyTable, SchedNode,
};

fn alu_node() -> SchedNode {
    SchedNode {
        class: OpClass::IntAlu,
        latency: 2,
    }
}

fn data_edge(from: usize, to: usize, latency: u32, distance: u32) -> DepEdge {
    DepEdge {
        from,
        to,
        latency,
        distance,
        kind: DepKind::Data,
    }
}

// ---------------------------------------------------------------- schedule

#[test]
fn e101_oversubscribed_slot() {
    // Six independent ALU ops all at t=0 on a 5-ALU cluster.
    let graph = DepGraph {
        nodes: (0..6).map(|_| alu_node()).collect(),
        edges: vec![],
    };
    let r = verify_schedule(&graph, 1, &[0; 6], &Machine::baseline());
    assert!(r.has(Code::SlotOversubscribed), "{r}");
}

#[test]
fn e102_violated_dependence() {
    // v0 (latency 2) feeds v1, but v1 issues one cycle later.
    let graph = DepGraph {
        nodes: vec![alu_node(), alu_node()],
        edges: vec![data_edge(0, 1, 2, 0)],
    };
    let r = verify_schedule(&graph, 4, &[0, 1], &Machine::baseline());
    assert!(r.has(Code::DependenceViolated), "{r}");
    assert!(!r.has(Code::SlotOversubscribed), "{r}");
}

#[test]
fn e102_violated_loop_carried_dependence() {
    // A distance-1 recurrence: t(to) + II*1 must still cover the latency.
    // t(1)=0, t(0)=3, latency 2, II=1: 0 + 1 < 3 + 2.
    let graph = DepGraph {
        nodes: vec![alu_node(), alu_node()],
        edges: vec![data_edge(0, 1, 2, 1)],
    };
    let r = verify_schedule(&graph, 1, &[3, 0], &Machine::baseline());
    assert!(r.has(Code::DependenceViolated), "{r}");
}

#[test]
fn e103_ii_below_recurrence_bound() {
    // A self-cycle of two latency-2 ops with total distance 1 forces
    // RecMII = 4; II = 2 must be flagged (the violated edges co-fire).
    let graph = DepGraph {
        nodes: vec![alu_node(), alu_node()],
        edges: vec![data_edge(0, 1, 2, 0), data_edge(1, 0, 2, 1)],
    };
    let r = verify_schedule(&graph, 2, &[0, 2], &Machine::baseline());
    assert!(r.has(Code::IiBelowMii), "{r}");
}

#[test]
fn e103_ii_below_resource_bound() {
    // Eleven ALU ops on 5 ALUs force ResMII = 3; a legal-looking spread at
    // II = 2 still underruns the resource bound.
    let nodes: Vec<SchedNode> = (0..11).map(|_| alu_node()).collect();
    let times: Vec<u32> = (0..11).collect();
    let graph = DepGraph {
        nodes,
        edges: vec![],
    };
    let r = verify_schedule(&graph, 2, &times, &Machine::baseline());
    assert!(r.has(Code::IiBelowMii), "{r}");
}

#[test]
fn e104_shape_mismatch() {
    let graph = DepGraph {
        nodes: vec![alu_node()],
        edges: vec![],
    };
    let r = verify_schedule(&graph, 1, &[0, 0], &Machine::baseline());
    assert!(r.has(Code::ShapeMismatch), "{r}");

    let graph = DepGraph {
        nodes: vec![alu_node()],
        edges: vec![data_edge(0, 7, 2, 0)],
    };
    let r = verify_schedule(&graph, 1, &[0], &Machine::baseline());
    assert!(r.has(Code::ShapeMismatch), "{r}");
}

#[test]
fn e105_zero_ii() {
    let graph = DepGraph {
        nodes: vec![alu_node()],
        edges: vec![],
    };
    let r = verify_schedule(&graph, 0, &[0], &Machine::baseline());
    assert!(r.has(Code::ZeroIi), "{r}");
}

#[test]
fn e106_latency_drift() {
    // A node claiming latency 99 for IntAlu disagrees with the verifier's
    // own table (2 on the baseline).
    let graph = DepGraph {
        nodes: vec![SchedNode {
            class: OpClass::IntAlu,
            latency: 99,
        }],
        edges: vec![],
    };
    let r = verify_schedule(&graph, 1, &[0], &Machine::baseline());
    assert!(r.has(Code::LatencyDrift), "{r}");
}

#[test]
fn w101_register_pressure() {
    // One value held live across 300 iterations at II=1 needs ~300
    // rotating copies — far over the 224-register baseline LRF.
    let graph = DepGraph {
        nodes: vec![alu_node(), alu_node()],
        edges: vec![data_edge(0, 1, 2, 300)],
    };
    let r = verify_schedule(&graph, 1, &[0, 2], &Machine::baseline());
    assert!(r.has(Code::RegisterPressure), "{r}");
    assert!(!r.has_errors(), "{r}");
}

// ---------------------------------------------------------------- ir lint

#[test]
fn e007_degenerate_recurrence_cycle() {
    let mut b = KernelBuilder::new("spin");
    let s = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let r1 = b.recurrence(Scalar::I32(0));
    let r2 = b.recurrence(Scalar::I32(0));
    b.bind_next(r1, r2);
    b.bind_next(r2, r1);
    let x = b.read(s);
    let y = b.add(x, r1);
    b.write(out, y);
    let k = b.finish().unwrap();
    let r = lint_kernel(&k);
    assert!(r.has(Code::DegenerateRecurrence), "{r}");
}

#[test]
fn e008_missing_latency_entry() {
    let mut b = KernelBuilder::new("div");
    let s = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    let x = b.read(s);
    let y = b.div(x, x);
    b.write(out, y);
    let k = b.finish().unwrap();
    let table = LatencyTable::default().without(OpClass::FloatDiv);
    let r = lint_kernel_with_table(&k, &table);
    assert_eq!(r.count(Code::MissingLatency), 1, "{r}");
}

#[test]
fn w001_w002_w003_dead_code_warnings() {
    let mut b = KernelBuilder::new("lazy");
    let s = b.in_stream(Ty::I32);
    let _ghost_in = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::I32);
    let _ghost_out = b.out_stream(Ty::F32);
    let x = b.read(s);
    let _dead = b.add(x, x);
    b.write(out, x);
    let k = b.finish().unwrap();
    let r = lint_kernel(&k);
    assert!(!r.has_errors(), "{r}");
    assert!(r.has(Code::DeadValue), "{r}");
    assert!(r.has(Code::UnusedInput), "{r}");
    assert!(r.has(Code::UnusedOutput), "{r}");
}

// ---------------------------------------------------------------- text lint

#[test]
fn e001_undefined_value_in_text() {
    let r =
        lint_text("kernel k\nin i32\nout i32\nv0 = read s0\nv1 = add v0 v9\nv2 = write s0 v0\n");
    assert!(r.has(Code::UndefinedValue), "{r}");
}

#[test]
fn e002_type_mismatch_in_text() {
    let r = lint_text("kernel k\nin i32\nin f32\nout i32\nv0 = read s0\nv1 = read s1\nv2 = add v0 v1\nv3 = write s0 v0\n");
    assert!(r.has(Code::TypeMismatch), "{r}");
}

#[test]
fn e003_unknown_opcode_in_text() {
    let r = lint_text(
        "kernel k\nin i32\nout i32\nv0 = read s0\nv1 = frobnicate v0\nv2 = write s0 v0\n",
    );
    assert!(r.has(Code::UnknownOpcode), "{r}");
    // The poisoned v1 must not cascade into further diagnostics.
    assert_eq!(r.error_count(), 1, "{r}");
}

#[test]
fn e004_non_dense_ids_in_text() {
    let r = lint_text("kernel k\nin i32\nout i32\nv0 = read s0\nv5 = write s0 v0\n");
    assert!(r.has(Code::NonDenseIds), "{r}");
}

#[test]
fn e005_no_value_operand_in_text() {
    let r = lint_text(
        "kernel k\nin i32\nout i32\nv0 = read s0\nv1 = write s0 v0\nv2 = add v1 v0\nv3 = write s0 v2\n",
    );
    assert!(r.has(Code::NoValueOperand), "{r}");
}

#[test]
fn e006_unbound_recurrence_in_text() {
    let r = lint_text("kernel k\nin i32\nout i32\nv0 = recur i32 0\nv1 = read s0\nv2 = add v0 v1\nv3 = write s0 v2\n");
    assert!(r.has(Code::RecurrenceBinding), "{r}");
}

#[test]
fn e009_unknown_stream_in_text() {
    let r = lint_text("kernel k\nin i32\nout i32\nv0 = read s7\nv1 = write s0 v0\n");
    assert!(r.has(Code::UnknownStream), "{r}");
}

#[test]
fn e010_malformed_lines_in_text() {
    let r = lint_text(
        "kernel k\nin i32\nout i32\nv0 = read s0\nv1 = const i32 zebra\nv2 = write s0 v0\n",
    );
    assert!(r.has(Code::Syntax), "{r}");
}

#[test]
fn every_code_is_catalogued() {
    // Keep `Code::ALL`, `as_str`, and the docs catalog in sync.
    assert_eq!(Code::ALL.len(), 34);
    for c in Code::ALL {
        assert!(!c.description().is_empty());
    }
}
