//! The `stream-serve` daemon binary.
//!
//! ```text
//! stream-serve [--addr HOST:PORT] [--jobs N] [--cache-dir DIR]
//! ```
//!
//! Binds `127.0.0.1:7878` by default and serves until `POST /v1/shutdown`
//! (or the process is killed). `--cache-dir` (or the `STREAM_CACHE_DIR`
//! environment variable) enables the persistent schedule and result caches,
//! so a restarted daemon answers warm.

use std::path::PathBuf;
use std::process::ExitCode;
use stream_serve::{start, ServerConfig};

const USAGE: &str = "usage: stream-serve [--addr HOST:PORT] [--jobs N] [--cache-dir DIR]

options:
  --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 picks a free port)
  --jobs N           worker permits (default: available parallelism)
  --cache-dir DIR    persist schedule + result caches under DIR
                     (default: $STREAM_CACHE_DIR if set)

endpoints: /health /metrics /v1/experiments /v1/run/<id> /v1/sweep /v1/query /v1/stats
           /v1/shutdown

environment:
  STREAM_FLIGHT_RECORDER   off/0/false disables the always-on flight recorder
  STREAM_FLIGHT_DUMP       path to dump the flight recorder to on panic";

fn main() -> ExitCode {
    let mut addr: Option<String> = Some("127.0.0.1:7878".to_string());
    let mut workers: Option<usize> = None;
    let mut cache_root: Option<PathBuf> = std::env::var_os("STREAM_CACHE_DIR").map(PathBuf::from);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take_value = |inline: Option<&str>, flag: &str| -> Result<String, ExitCode> {
            if let Some(v) = inline {
                return Ok(v.to_string());
            }
            args.next().ok_or_else(|| {
                eprintln!("stream-serve: {flag} needs a value\n{USAGE}");
                ExitCode::FAILURE
            })
        };
        let result = match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" => take_value(None, "--addr").map(|v| addr = Some(v)),
            s if s.starts_with("--addr=") => {
                take_value(s.strip_prefix("--addr="), "--addr").map(|v| addr = Some(v))
            }
            "--jobs" | "-j" => take_value(None, "--jobs")
                .and_then(parse_jobs)
                .map(|n| workers = Some(n)),
            s if s.starts_with("--jobs=") => take_value(s.strip_prefix("--jobs="), "--jobs")
                .and_then(parse_jobs)
                .map(|n| workers = Some(n)),
            "--cache-dir" => {
                take_value(None, "--cache-dir").map(|v| cache_root = Some(PathBuf::from(v)))
            }
            s if s.starts_with("--cache-dir=") => {
                take_value(s.strip_prefix("--cache-dir="), "--cache-dir")
                    .map(|v| cache_root = Some(PathBuf::from(v)))
            }
            other => {
                eprintln!("stream-serve: unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(code) = result {
            return code;
        }
    }

    // Flight recorder: on by default in the daemon (STREAM_FLIGHT_RECORDER
    // =off disables; STREAM_FLIGHT_DUMP=path arms the panic dump).
    stream_trace::init_flight_from_env();

    let config = ServerConfig {
        addr,
        workers,
        cache_root,
    };
    let handle = match start(&config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("stream-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("stream-serve: listening on http://{}", handle.addr());
    if let Some(root) = &config.cache_root {
        eprintln!("stream-serve: persistent cache at {}", root.display());
    }
    handle.join();
    eprintln!("stream-serve: stopped");
    ExitCode::SUCCESS
}

fn parse_jobs(value: String) -> Result<usize, ExitCode> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => {
            eprintln!("stream-serve: --jobs needs a positive integer, got `{value}`\n{USAGE}");
            Err(ExitCode::FAILURE)
        }
    }
}
