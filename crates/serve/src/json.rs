//! A minimal JSON value, parser, and renderer — enough for the daemon's
//! request/response bodies, with zero dependencies.
//!
//! Rendering is deterministic: objects keep insertion order, numbers render
//! via a fixed shortest-roundtrip rule, and [`Value::Raw`] lets
//! pre-rendered fragments (e.g. [`Report::to_json`](stream_repro::Report))
//! embed without a re-parse. The parser is a strict recursive-descent
//! reader of RFC 8259 JSON; anything malformed is a typed error, never a
//! panic.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (and rendered).
    Object(Vec<(String, Value)>),
    /// A pre-rendered JSON fragment, emitted verbatim. Construct only with
    /// output that is already valid JSON (e.g. `Report::to_json`).
    Raw(String),
}

impl Value {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Raw(raw) => out.push_str(raw),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf; the daemon never emits them.
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parse failed at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape consumed everything
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are trustworthy).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| {
                        self.err("invalid UTF-8") // unreachable: input was a &str
                    })?);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        self.pos += 1; // past the `u`
        let hex4 = |p: &mut Self| -> Result<u32, ParseError> {
            let s = p
                .bytes
                .get(p.pos..p.pos + 4)
                .and_then(|b| std::str::from_utf8(b).ok())
                .ok_or_else(|| p.err("truncated \\u escape"))?;
            let v =
                u32::from_str_radix(s, 16).map_err(|_| p.err("non-hex digits in \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        let cp = if (0xd800..0xdc00).contains(&hi) {
            // Surrogate pair: expect `\uXXXX` low half.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 2;
            let lo = hex4(self)?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
        } else if (0xdc00..0xe000).contains(&hi) {
            return Err(self.err("unpaired surrogate"));
        } else {
            hi
        };
        char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Convenience: an object from `(key, value)` pairs.
pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_documents() {
        for doc in [
            "null",
            "true",
            "[1,2.5,-3]",
            "{\"a\":[{\"b\":\"c\"}],\"d\":null}",
            "\"quote \\\" backslash \\\\ tab \\t\"",
            "{}",
            "[]",
        ] {
            let v = parse(doc).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{doc}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::String("é😀".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err()); // unpaired surrogate
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "nul", "1 2", "{\"a\":}", "\"\x01\"", "[1]]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn raw_embeds_verbatim() {
        let v = object([
            ("ok", Value::Bool(true)),
            ("report", Value::Raw("{\"id\":\"t\"}".to_string())),
        ]);
        assert_eq!(v.render(), "{\"ok\":true,\"report\":{\"id\":\"t\"}}");
    }

    #[test]
    fn numbers_render_deterministically() {
        assert_eq!(Value::Number(3.0).render(), "3");
        assert_eq!(Value::Number(0.5).render(), "0.5");
        assert_eq!(Value::Number(-7.0).render(), "-7");
    }
}
