//! The daemon: a TCP accept loop, permit-bounded dispatch, and the route
//! table mapping HTTP requests onto the [`Planner`] and the typed query
//! API.
//!
//! Worker accounting rides the process-global [`stream_pool`] permit pool —
//! the same pool the sweep engine and the tape executor draw from — so
//! total daemon parallelism is bounded no matter how many clients connect.
//! A connection that cannot get a permit is handled *inline on the accept
//! thread*: further accepts queue in the listen backlog until it finishes,
//! which is the daemon's rate limiting (clients see latency, never dropped
//! connections or unbounded threads).

use crate::http::{read_request, write_response, Request, RequestError, Response};
use crate::json::{object, parse, Value};
use crate::planner::Planner;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;
use stream_repro::{ExperimentId, Metric, SpaceQuery};

// Always-on daemon counters, registered once in the trace registry so
// `/metrics` reports them regardless of the tracing flag.
static CONNECTIONS: stream_trace::Counter = stream_trace::Counter::new();
static INLINE: stream_trace::Counter = stream_trace::Counter::new();
static REQUESTS: stream_trace::Counter = stream_trace::Counter::new();

/// Monotonic request-id source; ids are unique per daemon process and
/// echoed back as `X-Request-Id`.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

fn ensure_serve_metrics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        stream_trace::register_counter("serve.connection", &CONNECTIONS);
        stream_trace::register_counter("serve.inline", &INLINE);
        stream_trace::register_counter("serve.requests", &REQUESTS);
    });
}

/// The per-endpoint latency histogram name for a request path. A static
/// table (not the raw path) keys the histograms so hostile paths cannot
/// mint unbounded series.
fn latency_series(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/health") => "serve.latency.health",
        ("GET", "/metrics") => "serve.latency.metrics",
        ("GET", "/v1/experiments") => "serve.latency.experiments",
        ("GET", p) if p.starts_with("/v1/run/") => "serve.latency.run",
        ("GET" | "POST", "/v1/sweep") => "serve.latency.sweep",
        ("POST", "/v1/query") => "serve.latency.query",
        ("GET", "/v1/tune") => "serve.latency.tune",
        ("GET", "/v1/stats") => "serve.latency.stats",
        ("POST", "/v1/shutdown") => "serve.latency.shutdown",
        _ => "serve.latency.other",
    }
}

/// Daemon configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Bind address; `None` means loopback on an OS-assigned port.
    pub addr: Option<String>,
    /// Worker budget for the shared engine and permit pool; `None` means
    /// host parallelism.
    pub workers: Option<usize>,
    /// Cache root for the persistent schedule and result tiers; `None`
    /// serves memory-only.
    pub cache_root: Option<PathBuf>,
}

/// A handle to a running daemon.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    planner: Arc<Planner>,
    accept_thread: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (useful with an OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The planner, for out-of-band statistics.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Signals shutdown and waits for the accept loop to exit.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock a pending accept.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_thread.join();
    }

    /// Blocks until the daemon shuts down (e.g. via `POST /v1/shutdown`).
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

/// Starts the daemon and returns once the socket is bound and accepting.
///
/// # Errors
///
/// Propagates bind and cache-directory failures.
pub fn start(config: &ServerConfig) -> io::Result<ServerHandle> {
    let workers = config
        .workers
        .unwrap_or_else(stream_pool::default_parallelism)
        .max(1);
    ensure_serve_metrics();
    stream_pool::configure_global(workers);
    if let Some(root) = &config.cache_root {
        // Never fails on an already-attached tier: a second server in the
        // same process simply shares the first one's schedule cache.
        stream_grid::attach_global_disk(root)?;
        // Share the same root with the native-backend artifact tier so a
        // restarted daemon serves hot kernels without re-running rustc.
        stream_ir::attach_native_disk(root)?;
        // And with the auto-tuner's results tier, so `/v1/tune` answers
        // warm points with zero searches after a restart.
        stream_tune::attach_global_disk(root)?;
    }
    let planner = Arc::new(Planner::new(
        stream_grid::Engine::new(workers),
        config.cache_root.as_deref(),
    )?);
    let listener = TcpListener::bind(config.addr.as_deref().unwrap_or("127.0.0.1:0"))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let accept_thread = {
        let planner = Arc::clone(&planner);
        let stop = Arc::clone(&stop);
        thread::Builder::new()
            .name("stream-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, addr, &planner, &stop))?
    };

    Ok(ServerHandle {
        addr,
        stop,
        planner,
        accept_thread,
    })
}

fn accept_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    planner: &Arc<Planner>,
    stop: &Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((conn, _peer)) = listener.accept() else {
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        CONNECTIONS.incr();
        // Permit-bounded dispatch: with a permit, the connection gets its
        // own thread; without one the accept thread serves it itself, so
        // pending clients wait in the listen backlog — backpressure, not
        // thread growth.
        if stream_pool::global().take(1) == 1 {
            let planner = Arc::clone(planner);
            let stop = Arc::clone(stop);
            let spawned = thread::Builder::new()
                .name("stream-serve-worker".to_string())
                .spawn(move || {
                    handle_connection(conn, addr, &planner, &stop);
                    stream_pool::global().give(1);
                });
            if spawned.is_err() {
                stream_pool::global().give(1);
            }
        } else {
            INLINE.incr();
            handle_connection(conn, addr, planner, stop);
        }
    }
}

fn handle_connection(mut conn: TcpStream, addr: SocketAddr, planner: &Planner, stop: &AtomicBool) {
    // Every request gets a process-unique id, correlated with all work
    // done on its behalf: spans opened under this scope — including grid
    // jobs and tape/native execution on engine worker threads — carry a
    // `req=<id>` annotation, and the response echoes `X-Request-Id`.
    let request_id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
    let _correlation = stream_trace::request_scope(Some(request_id));
    REQUESTS.incr();
    let response = match read_request(&mut conn) {
        Ok(request) => {
            let shutting_down = request.method == "POST" && request.path == "/v1/shutdown";
            let started = Instant::now();
            let response = route(&request, planner);
            // Always-on per-endpoint latency: record through the handle,
            // not the flag-gated `record`, so `/metrics` sees latency
            // distributions without tracing enabled.
            stream_trace::histogram(latency_series(&request.method, &request.path))
                .record(started.elapsed().as_micros() as u64);
            if shutting_down && response.status == 200 {
                stop.store(true, Ordering::SeqCst);
            }
            response
        }
        Err(RequestError::Bad { status, reason }) => error_response(status, reason, None),
        Err(RequestError::Io(_)) => return, // nothing to answer on
    };
    let response = response.with_header("x-request-id", request_id.to_string());
    let _ = write_response(&mut conn, &response);
    drop(conn);
    if stop.load(Ordering::SeqCst) {
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(addr);
    }
}

fn error_response(status: u16, message: &str, suggestion: Option<&str>) -> Response {
    let mut fields = vec![("error", Value::String(message.to_string()))];
    if let Some(s) = suggestion {
        fields.push(("suggestion", Value::String(s.to_string())));
    }
    Response::json(status, object(fields).render())
}

/// Maps one request to one response. Pure: no socket I/O, so the whole
/// route table is unit-testable without a connection.
pub(crate) fn route(request: &Request, planner: &Planner) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::json(200, object([("ok", Value::Bool(true))]).render()),
        ("GET", "/metrics") => metrics_response(planner),
        ("GET", "/v1/experiments") => experiments_response(),
        ("GET", path) if path.starts_with("/v1/run/") => {
            run_response(&path["/v1/run/".len()..], request, planner)
        }
        ("GET" | "POST", "/v1/sweep") => sweep_response(request, planner),
        ("POST", "/v1/query") => query_response(request),
        ("GET", "/v1/tune") => tune_response(request, planner),
        ("GET", "/v1/stats") => stats_response(planner),
        ("POST", "/v1/shutdown") => {
            Response::json(200, object([("ok", Value::Bool(true))]).render())
        }
        ("GET" | "POST", _) => error_response(404, "no such endpoint", None),
        _ => error_response(405, "method not allowed", None),
    }
}

fn experiments_response() -> Response {
    let ids = Value::Array(
        ExperimentId::ALL
            .iter()
            .map(|id| Value::String(id.name().to_string()))
            .collect(),
    );
    Response::json(200, object([("experiments", ids)]).render())
}

fn parse_experiment(name: &str) -> Result<ExperimentId, Response> {
    name.parse::<ExperimentId>().map_err(|e| {
        error_response(
            404,
            &format!("unknown experiment `{}`", e.input),
            e.suggestion.map(|s| s.name()),
        )
    })
}

fn run_response(name: &str, request: &Request, planner: &Planner) -> Response {
    let id = match parse_experiment(name) {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    let cell = planner.cell(id);
    match request.query_param("format").unwrap_or("json") {
        "json" => Response::json(200, cell.json.clone()),
        // Byte-identical to `repro <id>` stdout — what CI diffs against.
        "text" => Response::text(200, cell.text.clone()),
        other => error_response(400, &format!("unknown format `{other}`"), None),
    }
}

fn requested_experiments(request: &Request) -> Result<Vec<ExperimentId>, Response> {
    let names: Vec<String> = if request.method == "GET" {
        match request.query_param("experiments") {
            Some("all") => return Ok(ExperimentId::ALL.to_vec()),
            Some(list) => list.split(',').map(str::to_string).collect(),
            None => {
                return Err(error_response(
                    400,
                    "missing `experiments` query parameter",
                    None,
                ))
            }
        }
    } else {
        let body = parse(&request.body)
            .map_err(|e| error_response(400, &format!("bad request body: {e}"), None))?;
        match body.get("experiments") {
            Some(Value::String(s)) if s == "all" => return Ok(ExperimentId::ALL.to_vec()),
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_str().map(str::to_string).ok_or_else(|| {
                        error_response(400, "`experiments` must be an array of strings", None)
                    })
                })
                .collect::<Result<_, _>>()?,
            _ => {
                return Err(error_response(
                    400,
                    "body needs an `experiments` array (or the string \"all\")",
                    None,
                ))
            }
        }
    };
    if names.is_empty() {
        return Err(error_response(400, "no experiments requested", None));
    }
    names
        .iter()
        .map(|n| parse_experiment(n))
        .collect::<Result<_, _>>()
}

fn sweep_response(request: &Request, planner: &Planner) -> Response {
    let ids = match requested_experiments(request) {
        Ok(ids) => ids,
        Err(resp) => return resp,
    };
    let cells = planner.cells(&ids);
    let reports = Value::Array(cells.iter().map(|c| Value::Raw(c.json.clone())).collect());
    Response::json(
        200,
        object([
            (
                "schema",
                Value::String("stream-scaling.sweep.v1".to_string()),
            ),
            ("reports", reports),
        ])
        .render(),
    )
}

fn parse_metric(v: &Value) -> Result<Metric, Response> {
    let name = v
        .as_str()
        .ok_or_else(|| error_response(400, "metric must be a string", None))?;
    name.parse::<Metric>()
        .map_err(|e| error_response(400, &e.to_string(), None))
}

fn u32_list(v: &Value, what: &str) -> Result<Vec<u32>, Response> {
    let items = v
        .as_array()
        .ok_or_else(|| error_response(400, &format!("`{what}` must be an array"), None))?;
    items
        .iter()
        .map(|item| {
            item.as_f64()
                .filter(|n| n.fract() == 0.0 && (1.0..=65536.0).contains(n))
                .map(|n| n as u32)
                .ok_or_else(|| {
                    error_response(
                        400,
                        &format!("`{what}` entries must be integers in 1..=65536"),
                        None,
                    )
                })
        })
        .collect()
}

fn query_response(request: &Request) -> Response {
    let body = match parse(&request.body) {
        Ok(v) => v,
        Err(e) => return error_response(400, &format!("bad request body: {e}"), None),
    };
    let Some(minimize) = body.get("minimize") else {
        return error_response(400, "body needs a `minimize` metric", None);
    };
    let objective = match parse_metric(minimize) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    let mut query = SpaceQuery::minimize(objective);
    if let Some(cs) = body.get("clusters") {
        match u32_list(cs, "clusters") {
            Ok(cs) => query = query.clusters(cs),
            Err(resp) => return resp,
        }
    }
    if let Some(ns) = body.get("alus_per_cluster") {
        match u32_list(ns, "alus_per_cluster") {
            Ok(ns) => query = query.alus_per_cluster(ns),
            Err(resp) => return resp,
        }
    }
    if let Some(cons) = body.get("constraints") {
        let Some(items) = cons.as_array() else {
            return error_response(400, "`constraints` must be an array", None);
        };
        for item in items {
            let metric = match item.get("metric").map(parse_metric) {
                Some(Ok(m)) => m,
                Some(Err(resp)) => return resp,
                None => return error_response(400, "constraint needs a `metric`", None),
            };
            let Some(max) = item.get("max").and_then(Value::as_f64) else {
                return error_response(400, "constraint needs a numeric `max`", None);
            };
            query = query.subject_to(metric, max);
        }
    }
    match query.solve() {
        Some(answer) => Response::json(
            200,
            object([
                (
                    "schema",
                    Value::String("stream-scaling.space.v1".to_string()),
                ),
                ("minimize", Value::String(objective.name().to_string())),
                (
                    "shape",
                    object([
                        ("clusters", Value::Number(f64::from(answer.shape.clusters))),
                        (
                            "alus_per_cluster",
                            Value::Number(f64::from(answer.shape.alus_per_cluster)),
                        ),
                    ]),
                ),
                ("value", Value::Number(answer.value)),
                ("evaluated", Value::Number(answer.evaluated as f64)),
                ("feasible", Value::Number(answer.feasible as f64)),
            ])
            .render(),
        ),
        None => error_response(422, "no shape satisfies the constraints", None),
    }
}

/// `GET /v1/tune?app=NAME[&clusters=C][&alus_per_cluster=N]`: the
/// auto-tuner's verdict for one application on one machine shape —
/// default vs tuned cycle counts and the winning configuration. Shape
/// defaults to the paper baseline (C=8, N=5); results are memoized per
/// daemon and persisted under the cache root, so repeated queries are
/// reads, not searches.
fn tune_response(request: &Request, planner: &Planner) -> Response {
    let Some(name) = request.query_param("app") else {
        return error_response(400, "missing `app` query parameter", None);
    };
    let Some(app) = stream_apps::AppId::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
    else {
        let known = stream_apps::AppId::ALL.map(|a| a.name()).join(" ");
        return error_response(404, &format!("unknown app `{name}`; known: {known}"), None);
    };
    let dim = |key: &str, default: u32, max: u32| -> Result<u32, Response> {
        match request.query_param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<u32>()
                .ok()
                .filter(|n| (1..=max).contains(n))
                .ok_or_else(|| {
                    error_response(
                        400,
                        &format!("`{key}` must be an integer in 1..={max}"),
                        None,
                    )
                }),
        }
    };
    let clusters = match dim("clusters", 8, 1024) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let alus = match dim("alus_per_cluster", 5, 64) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let t = planner.tuned(app, clusters, alus);
    let winner = object([
        (
            "unroll_factors",
            Value::Array(
                t.candidate
                    .unroll_factors
                    .iter()
                    .map(|&u| Value::Number(f64::from(u)))
                    .collect(),
            ),
        ),
        (
            "strip_scale",
            Value::Number(f64::from(t.candidate.strip_scale)),
        ),
        ("tape", Value::String(t.candidate.tape.name().to_string())),
        ("native_auto", Value::Bool(t.candidate.native_auto)),
        ("describe", Value::String(t.candidate.describe())),
    ]);
    Response::json(
        200,
        object([
            (
                "schema",
                Value::String("stream-scaling.tune.v1".to_string()),
            ),
            ("app", Value::String(app.name().to_string())),
            (
                "shape",
                object([
                    ("clusters", Value::Number(f64::from(clusters))),
                    ("alus_per_cluster", Value::Number(f64::from(alus))),
                ]),
            ),
            ("default_cycles", Value::Number(t.default_cycles as f64)),
            ("tuned_cycles", Value::Number(t.tuned_cycles as f64)),
            ("speedup", Value::Number(t.speedup())),
            ("winner", winner),
            (
                "search",
                object([
                    ("from_disk", Value::Bool(t.from_disk)),
                    ("evaluated", Value::Number(t.evaluated as f64)),
                    ("pruned", Value::Number(t.pruned as f64)),
                    ("sched_compiles", Value::Number(t.sched_compiles as f64)),
                ]),
            ),
        ])
        .render(),
    )
}

/// `GET /metrics`: Prometheus text exposition over the whole registry.
/// Scraping samples current state first — pool occupancy, cache
/// residency, disk bytes, planner cells — so gauges are fresh as of this
/// response, and touches the cache/native counter registrations so their
/// series exist even on a daemon that has not compiled anything yet.
fn metrics_response(planner: &Planner) -> Response {
    ensure_serve_metrics();
    stream_grid::sample_gauges();
    let _ = stream_ir::native_stats(); // registers the native.* series
    let _ = stream_tune::stats(); // registers the tune.* series
    let p = planner.stats();
    // Planner counters are per-instance (a process can host several
    // planners), so the global registry carries them as sampled gauges
    // from the planner actually serving this scrape.
    stream_trace::set_gauge("serve.planner.lookups", p.lookups);
    stream_trace::set_gauge("serve.planner.computed", p.computed);
    stream_trace::set_gauge("serve.planner.disk_hits", p.disk_hits);
    stream_trace::set_gauge("serve.planner.cells", planner.cells_resident() as u64);
    Response::prometheus(200, stream_trace::render_prometheus())
}

fn stats_response(planner: &Planner) -> Response {
    let p = planner.stats();
    let k = stream_grid::global_cache().stats();
    let n = stream_ir::native_stats();
    let t = stream_tune::stats();
    Response::json(
        200,
        object([
            (
                "planner",
                object([
                    ("lookups", Value::Number(p.lookups as f64)),
                    ("computed", Value::Number(p.computed as f64)),
                    ("disk_hits", Value::Number(p.disk_hits as f64)),
                ]),
            ),
            (
                "kernel_cache",
                object([
                    ("hits", Value::Number(k.hits as f64)),
                    ("misses", Value::Number(k.misses as f64)),
                    ("compiles", Value::Number(k.compiles as f64)),
                    ("disk_hits", Value::Number(k.disk_hits as f64)),
                    ("disk_misses", Value::Number(k.disk_misses as f64)),
                ]),
            ),
            (
                "native",
                object([
                    ("compiles", Value::Number(n.compiles as f64)),
                    ("disk_hits", Value::Number(n.disk_hits as f64)),
                    ("fallbacks", Value::Number(n.fallbacks as f64)),
                ]),
            ),
            (
                "tune",
                object([
                    ("searches", Value::Number(t.searches as f64)),
                    ("rehydrated", Value::Number(t.rehydrated as f64)),
                    ("pruned", Value::Number(t.pruned as f64)),
                    ("candidates", Value::Number(t.candidates as f64)),
                    ("sched_compiles", Value::Number(t.sched_compiles as f64)),
                ]),
            ),
        ])
        .render(),
    )
}
