//! The query planner: cross-client dedup of experiment cells, plus the
//! persistent results tier.
//!
//! Every endpoint that renders a report goes through [`Planner::cell`].
//! Concurrent requests for the same experiment coalesce onto one
//! computation (the same `Arc<OnceLock>` pattern the kernel cache uses for
//! schedules: the first arrival computes, everyone else blocks on the slot
//! and shares the result), so two clients sweeping overlapping grids
//! compile each shared cell exactly once. Both rendered forms — the
//! `stream-scaling.report.v1` JSON and the CLI-identical text — are
//! produced once and byte-shared by every response.
//!
//! With a cache root configured, finished cells are also written through to
//! a [`DiskStore`] namespace versioned by the crate version, so a restarted
//! daemon answers warm without recomputing (and without recompiling:
//! schedules rehydrate from their own tier). A corrupt or stale entry is a
//! silent recompute, and cells always self-identify (the key material is
//! embedded in the payload), so a hash collision cannot serve the wrong
//! experiment.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};
use stream_grid::Engine;
use stream_repro::{run_with, ExperimentId};
use stream_store::{DiskStore, Key};
use stream_trace::Counter;

/// Version of the on-disk cell payload layout; bump on change.
const RESULTS_FORMAT_VERSION: u32 = 1;

/// One fully rendered experiment cell, shared across responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The report's stable JSON (schema `stream-scaling.report.v1`).
    pub json: String,
    /// The report's text rendering plus trailing newline — byte-identical
    /// to what `repro <id>` prints to stdout.
    pub text: String,
}

type CellSlot = Arc<OnceLock<Arc<Cell>>>;
type TuneSlot = Arc<OnceLock<Arc<stream_tune::Tuned>>>;

/// Deduplicating, disk-backed cell planner. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct Planner {
    engine: Engine,
    cells: Mutex<HashMap<ExperimentId, CellSlot>>,
    /// Tuning results, keyed by `(app, clusters, alus_per_cluster)` —
    /// the same coalescing slot pattern as experiment cells, so concurrent
    /// clients tuning the same point share one search.
    tuned: Mutex<HashMap<(stream_apps::AppId, u32, u32), TuneSlot>>,
    disk: Option<DiskStore>,
    lookups: Counter,
    computed: Counter,
    disk_hits: Counter,
}

/// A snapshot of planner counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerStats {
    /// Cell requests served (every lookup, hit or not).
    pub lookups: u64,
    /// Cells computed by actually running an experiment.
    pub computed: u64,
    /// Cells served from the persistent results tier.
    pub disk_hits: u64,
}

impl Planner {
    /// Creates a planner over `engine`. With `cache_root`, finished cells
    /// persist under `<root>/results-<version>.v1/` and a restarted daemon
    /// starts warm.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation failures.
    pub fn new(engine: Engine, cache_root: Option<&Path>) -> io::Result<Self> {
        let disk = match cache_root {
            // The crate version is part of the namespace, not just the key,
            // so a rebuilt daemon with changed rendering never reads the
            // old code's cells.
            Some(root) => Some(DiskStore::open(
                root,
                concat!("results-", env!("CARGO_PKG_VERSION")),
                RESULTS_FORMAT_VERSION,
            )?),
            None => None,
        };
        Ok(Self {
            engine,
            cells: Mutex::new(HashMap::new()),
            tuned: Mutex::new(HashMap::new()),
            disk,
            lookups: Counter::new(),
            computed: Counter::new(),
            disk_hits: Counter::new(),
        })
    }

    /// The shared engine requests run on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Returns the rendered cell for `id`, computing it at most once per
    /// daemon lifetime no matter how many clients ask concurrently.
    pub fn cell(&self, id: ExperimentId) -> Arc<Cell> {
        self.lookups.incr();
        let slot: CellSlot = {
            let mut cells = self.cells.lock().expect("planner poisoned");
            Arc::clone(cells.entry(id).or_default())
        };
        Arc::clone(slot.get_or_init(|| {
            let mut span = stream_trace::span("serve", "cell");
            span.arg("experiment", id.name());
            if let Some(warm) = self.disk_load(id) {
                self.disk_hits.incr();
                stream_trace::count("serve.cell_disk_hit", 1);
                span.arg("tier", "disk");
                return Arc::new(warm);
            }
            self.computed.incr();
            stream_trace::count("serve.cell_computed", 1);
            span.arg("tier", "compute");
            let report = run_with(id, &self.engine);
            let cell = Cell {
                json: report.to_json(),
                text: format!("{report}\n"),
            };
            self.disk_save(id, &cell);
            Arc::new(cell)
        }))
    }

    /// Cells for several experiments, in request order.
    pub fn cells(&self, ids: &[ExperimentId]) -> Vec<Arc<Cell>> {
        ids.iter().map(|&id| self.cell(id)).collect()
    }

    /// The auto-tuning result for `app` on a `clusters × alus_per_cluster`
    /// machine, searched at most once per daemon lifetime per point.
    /// `stream-tune` itself rehydrates validated winners from the shared
    /// cache root (attached in `start`), so a restarted daemon answers
    /// warm points without re-searching.
    pub fn tuned(
        &self,
        app: stream_apps::AppId,
        clusters: u32,
        alus: u32,
    ) -> Arc<stream_tune::Tuned> {
        let slot: TuneSlot = {
            let mut tuned = self.tuned.lock().expect("planner poisoned");
            Arc::clone(tuned.entry((app, clusters, alus)).or_default())
        };
        Arc::clone(slot.get_or_init(|| {
            let mut span = stream_trace::span("serve", "tune");
            span.arg("app", app.name());
            let machine = stream_machine::Machine::paper(stream_vlsi::Shape::new(clusters, alus));
            Arc::new(stream_tune::tune_app(
                app,
                &machine,
                &stream_machine::SystemParams::paper_2007(),
            ))
        }))
    }

    /// Current planner counters.
    pub fn stats(&self) -> PlannerStats {
        PlannerStats {
            lookups: self.lookups.get(),
            computed: self.computed.get(),
            disk_hits: self.disk_hits.get(),
        }
    }

    /// Number of experiment cells resident in memory (computed or
    /// rehydrated), for the `serve.planner.cells` gauge.
    pub fn cells_resident(&self) -> usize {
        self.cells
            .lock()
            .expect("planner poisoned")
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    fn cell_key_material(id: ExperimentId) -> Vec<u8> {
        let mut blob = Vec::new();
        blob.extend_from_slice(b"cell\0");
        blob.extend_from_slice(id.name().as_bytes());
        blob
    }

    fn disk_load(&self, id: ExperimentId) -> Option<Cell> {
        let store = self.disk.as_ref()?;
        let blob = Self::cell_key_material(id);
        let payload = store.get(Key::of(&blob))?;
        let mut rest = payload.as_slice();
        let mut section = |out: &mut Vec<u8>| -> Option<()> {
            let len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
            out.extend_from_slice(rest.get(4..4 + len)?);
            rest = &rest[4 + len..];
            Some(())
        };
        let (mut key, mut json, mut text) = (Vec::new(), Vec::new(), Vec::new());
        section(&mut key)?;
        section(&mut json)?;
        section(&mut text)?;
        if !rest.is_empty() || key != blob {
            return None;
        }
        Some(Cell {
            json: String::from_utf8(json).ok()?,
            text: String::from_utf8(text).ok()?,
        })
    }

    fn disk_save(&self, id: ExperimentId, cell: &Cell) {
        let Some(store) = self.disk.as_ref() else {
            return;
        };
        let blob = Self::cell_key_material(id);
        let mut payload = Vec::with_capacity(12 + blob.len() + cell.json.len() + cell.text.len());
        for section in [&blob[..], cell.json.as_bytes(), cell.text.as_bytes()] {
            payload.extend_from_slice(&(section.len() as u32).to_le_bytes());
            payload.extend_from_slice(section);
        }
        let _ = store.put(Key::of(&blob), &payload); // best-effort
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> (std::path::PathBuf, impl Drop) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "stream-serve-planner-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
        (dir.clone(), Cleanup(dir))
    }

    #[test]
    fn concurrent_lookups_compute_once_and_share_bytes() {
        let planner = Planner::new(Engine::new(2), None).unwrap();
        let cells: Vec<Arc<Cell>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| planner.cell(ExperimentId::Table4)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for cell in &cells {
            assert!(Arc::ptr_eq(cell, &cells[0]));
        }
        let stats = planner.stats();
        assert_eq!(stats.lookups, 8);
        assert_eq!(stats.computed, 1);
    }

    #[test]
    fn cell_text_matches_run_with() {
        let planner = Planner::new(Engine::new(1), None).unwrap();
        let cell = planner.cell(ExperimentId::Table1);
        let direct = run_with(ExperimentId::Table1, &Engine::new(1));
        assert_eq!(cell.text, format!("{direct}\n"));
        assert_eq!(cell.json, direct.to_json());
    }

    #[test]
    fn results_tier_survives_a_restart() {
        let (root, _guard) = scratch("restart");
        let first = Planner::new(Engine::new(1), Some(&root)).unwrap();
        let cold = first.cell(ExperimentId::Table1);
        assert_eq!(first.stats().computed, 1);

        // "Restart": a fresh planner over the same root serves from disk.
        let second = Planner::new(Engine::new(1), Some(&root)).unwrap();
        let warm = second.cell(ExperimentId::Table1);
        let stats = second.stats();
        assert_eq!(stats.computed, 0);
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(warm.json, cold.json);
        assert_eq!(warm.text, cold.text);
    }

    #[test]
    fn corrupt_results_entries_recompute() {
        let (root, _guard) = scratch("corrupt");
        Planner::new(Engine::new(1), Some(&root))
            .unwrap()
            .cell(ExperimentId::Table1);
        // Corrupt every entry in the results namespace.
        let ns = std::fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.is_dir())
            .unwrap();
        for entry in std::fs::read_dir(&ns).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
        }
        let recovered = Planner::new(Engine::new(1), Some(&root)).unwrap();
        let cell = recovered.cell(ExperimentId::Table1);
        assert_eq!(recovered.stats().computed, 1);
        assert_eq!(
            cell.text,
            format!("{}\n", run_with(ExperimentId::Table1, &Engine::new(1)))
        );
    }
}
