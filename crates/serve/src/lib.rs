#![warn(missing_docs)]
//! Sweep-as-a-service: the `stream-serve` daemon.
//!
//! A zero-dependency HTTP/1.1 JSON server (on [`std::net::TcpListener`])
//! that answers the questions the paper answers by hand across its Figure
//! 13–15 grids — single experiments, grid sweeps, and constrained
//! design-space queries ("argmin energy/op subject to area ≤ X") — as a
//! long-running service:
//!
//! * **Bounded workers, rate limiting for free** — connections draw
//!   permits from the shared [`stream_pool`] pool; when permits run out the
//!   accept thread serves requests itself and new clients queue in the
//!   listen backlog.
//! * **Cross-client dedup** — overlapping grid requests coalesce onto one
//!   computation per `(experiment)` cell ([`Planner`]), so two clients
//!   sweeping overlapping grids compile each shared cell exactly once and
//!   receive byte-identical JSON.
//! * **Persistent caches** — with a cache root, compiled schedules
//!   (via `stream-grid`'s disk tier) and rendered results survive
//!   restarts; a warm daemon answers without a single scheduler run.
//!
//! # Endpoints
//!
//! | Method | Path | Answer |
//! |---|---|---|
//! | GET | `/health` | `{"ok":true}` |
//! | GET | `/v1/experiments` | known experiment ids |
//! | GET | `/v1/run/<id>?format=json\|text` | one report (text is byte-identical to `repro <id>` stdout) |
//! | GET/POST | `/v1/sweep?experiments=a,b` | several reports, request order |
//! | POST | `/v1/query` | constrained design-space argmin |
//! | GET | `/v1/tune?app=NAME[&clusters=C][&alus_per_cluster=N]` | auto-tuner verdict: tuned vs default and the winning configuration |
//! | GET | `/v1/stats` | planner + kernel-cache + tuner counters |
//! | GET | `/metrics` | Prometheus text exposition (counters, gauges, latency histograms) |
//! | POST | `/v1/shutdown` | stops the daemon |
//!
//! Every response carries an `X-Request-Id` header; the same id annotates
//! (`req=<id>`) every span the request produced, down to grid jobs and
//! tape/native execution, so one slow sweep is traceable end to end. See
//! `docs/serve_api.md` for the wire schemas and a curl quickstart, and
//! `docs/metrics.md` for the exported metric catalogue.

pub mod http;
pub mod json;
mod planner;
mod server;

pub use planner::{Cell, Planner, PlannerStats};
pub use server::{start, ServerConfig, ServerHandle};

#[cfg(test)]
mod tests {
    use super::http::{Request, Response};
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use stream_grid::Engine;
    use stream_repro::{run_with, ExperimentId, Metric, SpaceQuery};

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path.to_string(), String::new()),
        };
        Request {
            method: "GET".to_string(),
            path,
            query,
            body: String::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: String::new(),
            body: body.to_string(),
        }
    }

    fn planner() -> Planner {
        Planner::new(Engine::new(2), None).unwrap()
    }

    fn route(req: &Request, p: &Planner) -> Response {
        super::server::route(req, p)
    }

    #[test]
    fn health_and_experiments() {
        let p = planner();
        assert_eq!(route(&get("/health"), &p).body, "{\"ok\":true}");
        let body = route(&get("/v1/experiments"), &p).body;
        assert!(
            body.contains("\"fig13\"") && body.contains("\"verify\""),
            "{body}"
        );
    }

    #[test]
    fn run_text_is_byte_identical_to_the_cli_rendering() {
        let p = planner();
        let resp = route(&get("/v1/run/table1?format=text"), &p);
        assert_eq!(resp.status, 200);
        let direct = run_with(ExperimentId::Table1, &Engine::new(1));
        assert_eq!(resp.body, format!("{direct}\n"));
    }

    #[test]
    fn run_json_is_the_report_schema() {
        let p = planner();
        let resp = route(&get("/v1/run/table4"), &p);
        assert_eq!(resp.status, 200);
        let parsed = json::parse(&resp.body).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("stream-scaling.report.v1")
        );
        assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("table4"));
    }

    #[test]
    fn unknown_experiment_is_a_404_with_a_suggestion() {
        let p = planner();
        let resp = route(&get("/v1/run/tabel4"), &p);
        assert_eq!(resp.status, 404);
        let parsed = json::parse(&resp.body).unwrap();
        assert_eq!(
            parsed.get("suggestion").and_then(|v| v.as_str()),
            Some("table4")
        );
    }

    #[test]
    fn sweep_get_and_post_agree_and_dedup() {
        let p = planner();
        let a = route(&get("/v1/sweep?experiments=table1,table4"), &p);
        let b = route(
            &post("/v1/sweep", "{\"experiments\":[\"table1\",\"table4\"]}"),
            &p,
        );
        assert_eq!(a.status, 200);
        assert_eq!(a.body, b.body);
        // Two sweeps over the same cells: each cell computed exactly once.
        assert_eq!(p.stats().computed, 2);
        assert_eq!(p.stats().lookups, 4);
    }

    #[test]
    fn concurrent_overlapping_sweeps_share_cells_and_bytes() {
        let p = planner();
        let (first, second) = std::thread::scope(|s| {
            let h1 = s.spawn(|| route(&get("/v1/sweep?experiments=table1,table4"), &p));
            let h2 = s.spawn(|| route(&get("/v1/sweep?experiments=table4,table3"), &p));
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert_eq!(first.status, 200);
        assert_eq!(second.status, 200);
        // The shared cell (table4) renders identically in both responses...
        let shared = |body: &str| {
            let parsed = json::parse(body).unwrap();
            parsed
                .get("reports")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|r| r.render())
                .find(|r| r.contains("\"id\":\"table4\""))
                .unwrap()
        };
        assert_eq!(shared(&first.body), shared(&second.body));
        // ...and was computed exactly once: 3 distinct cells, 4 lookups.
        assert_eq!(p.stats().computed, 3);
        assert_eq!(p.stats().lookups, 4);
    }

    #[test]
    fn query_endpoint_matches_the_library_solver() {
        let p = planner();
        let body = "{\"minimize\":\"energy_per_op\",\
                     \"constraints\":[{\"metric\":\"area_per_alu\",\"max\":1e9}],\
                     \"clusters\":[8,16,32],\"alus_per_cluster\":[2,5]}";
        let resp = route(&post("/v1/query", body), &p);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let expected = SpaceQuery::minimize(Metric::EnergyPerOp)
            .subject_to(Metric::AreaPerAlu, 1e9)
            .clusters([8, 16, 32])
            .alus_per_cluster([2, 5])
            .solve()
            .unwrap();
        let parsed = json::parse(&resp.body).unwrap();
        let shape = parsed.get("shape").unwrap();
        assert_eq!(
            shape.get("clusters").and_then(|v| v.as_f64()),
            Some(f64::from(expected.shape.clusters))
        );
        assert_eq!(
            shape.get("alus_per_cluster").and_then(|v| v.as_f64()),
            Some(f64::from(expected.shape.alus_per_cluster))
        );
        assert_eq!(
            parsed.get("value").and_then(|v| v.as_f64()).unwrap(),
            expected.value
        );

        // Infeasible constraints are a clean 422.
        let resp = route(
            &post(
                "/v1/query",
                "{\"minimize\":\"energy_per_op\",\
                  \"constraints\":[{\"metric\":\"area_per_alu\",\"max\":0}]}",
            ),
            &p,
        );
        assert_eq!(resp.status, 422);
    }

    #[test]
    fn tune_endpoint_answers_and_memoizes() {
        let p = planner();
        let resp = route(&get("/v1/tune?app=conv"), &p);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = json::parse(&resp.body).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("stream-scaling.tune.v1")
        );
        assert_eq!(parsed.get("app").and_then(|v| v.as_str()), Some("CONV"));
        let shape = parsed.get("shape").unwrap();
        assert_eq!(shape.get("clusters").and_then(|v| v.as_f64()), Some(8.0));
        assert_eq!(
            shape.get("alus_per_cluster").and_then(|v| v.as_f64()),
            Some(5.0)
        );
        // Default evaluated first: tuned can never lose.
        let speedup = parsed.get("speedup").and_then(|v| v.as_f64()).unwrap();
        assert!(speedup >= 1.0, "{speedup}");
        assert!(parsed.get("winner").unwrap().get("describe").is_some());
        // A repeat query is a memo read: byte-identical, no new search.
        let again = route(&get("/v1/tune?app=CONV"), &p);
        assert_eq!(again.body, resp.body);
    }

    #[test]
    fn tune_endpoint_rejects_bad_inputs() {
        let p = planner();
        assert_eq!(route(&get("/v1/tune"), &p).status, 400);
        let resp = route(&get("/v1/tune?app=nosuch"), &p);
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("CONV"), "{}", resp.body);
        assert_eq!(route(&get("/v1/tune?app=conv&clusters=0"), &p).status, 400);
        assert_eq!(
            route(&get("/v1/tune?app=conv&alus_per_cluster=1000"), &p).status,
            400
        );
        assert_eq!(route(&post("/v1/tune", ""), &p).status, 404);
    }

    #[test]
    fn metrics_endpoint_renders_valid_exposition() {
        let p = planner();
        // Serve one report first so real series have data behind them.
        assert_eq!(route(&get("/v1/run/table1"), &p).status, 200);
        let resp = route(&get("/metrics"), &p);
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain; version=0.0.4"));
        // The always-on families are present regardless of the tracing
        // flag: consolidated cache counters, native tier, serve gauges.
        for series in [
            "# TYPE cache_compiles counter",
            "# TYPE native_fallbacks counter",
            "# TYPE serve_planner_cells gauge",
            "# TYPE pool_permits_capacity gauge",
            "# TYPE cache_entries gauge",
        ] {
            assert!(resp.body.contains(series), "missing {series:?}");
        }
        // Gauges are global and other tests may re-sample them
        // concurrently, so assert residency through the planner API and
        // only series presence in the exposition.
        assert_eq!(p.cells_resident(), 1);
        assert!(resp.body.contains("serve_planner_computed "));
        assert!(resp.body.contains("serve_planner_cells "));
    }

    #[test]
    fn malformed_requests_are_4xx_never_panics() {
        let p = planner();
        assert_eq!(route(&post("/v1/query", "{not json"), &p).status, 400);
        assert_eq!(route(&post("/v1/query", "{}"), &p).status, 400);
        assert_eq!(
            route(&post("/v1/query", "{\"minimize\":\"joules\"}"), &p).status,
            400
        );
        assert_eq!(route(&get("/v1/sweep"), &p).status, 400);
        assert_eq!(route(&get("/v1/sweep?experiments="), &p).status, 404);
        assert_eq!(route(&get("/nope"), &p).status, 404);
        assert_eq!(route(&post("/v1/experiments", ""), &p).status, 404);
        assert_eq!(route(&get("/v1/run/table1?format=xml"), &p).status, 400);
    }

    /// Full socket-level smoke: start, serve two concurrent clients, check
    /// stats, shut down via the endpoint.
    #[test]
    fn daemon_end_to_end_over_real_sockets() {
        let handle = start(&ServerConfig {
            addr: None,
            workers: Some(2),
            cache_root: None,
        })
        .unwrap();
        let addr = handle.addr();

        let fetch = move |request: String| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(request.as_bytes()).unwrap();
            let mut wire = String::new();
            conn.read_to_string(&mut wire).unwrap();
            wire
        };
        let get_req =
            |path: &str| format!("GET {path} HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n");

        let (a, b) = std::thread::scope(|s| {
            let h1 = s.spawn(|| fetch(get_req("/v1/sweep?experiments=table1,table4")));
            let h2 = s.spawn(|| fetch(get_req("/v1/sweep?experiments=table4,table1")));
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert!(a.starts_with("HTTP/1.1 200"), "{a}");
        assert!(b.starts_with("HTTP/1.1 200"), "{b}");
        let body = |wire: &str| wire.split("\r\n\r\n").nth(1).unwrap().to_string();
        // Same cells, opposite order: same reports, per-request order.
        let (body_a, body_b) = (body(&a), body(&b));
        assert_ne!(body_a, body_b);
        let a_parsed = json::parse(&body_a).unwrap();
        let b_parsed = json::parse(&body_b).unwrap();
        let renders = |v: &json::Value| -> Vec<String> {
            let mut r: Vec<String> = v
                .get("reports")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|x| x.render())
                .collect();
            r.sort();
            r
        };
        assert_eq!(renders(&a_parsed), renders(&b_parsed));

        assert_eq!(handle.planner().stats().computed, 2);

        let wire = fetch(get_req("/v1/stats"));
        assert!(wire.contains("\"planner\""), "{wire}");
        // Every response is correlated with a unique request id.
        assert!(wire.contains("x-request-id: "), "{wire}");
        let ids: Vec<&str> = [&a, &b]
            .iter()
            .map(|w| {
                w.lines()
                    .find_map(|l| l.strip_prefix("x-request-id: "))
                    .expect("request id header present")
            })
            .collect();
        assert_ne!(ids[0], ids[1], "concurrent requests got distinct ids");

        let metrics = fetch(get_req("/metrics"));
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("serve_requests "), "{metrics}");
        assert!(metrics.contains("serve_latency_sweep_count"), "{metrics}");

        let shutdown =
            fetch("POST /v1/shutdown HTTP/1.1\r\nhost: x\r\ncontent-length: 0\r\n\r\n".to_string());
        assert!(shutdown.starts_with("HTTP/1.1 200"), "{shutdown}");
        handle.join();
    }
}
