//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`]: enough
//! to parse one request (line + headers + `Content-Length` body) and write
//! one response, with hard limits on every dimension so a misbehaving
//! client cannot wedge a worker. Connections are `Connection: close` — one
//! request per connection keeps the daemon's concurrency model identical to
//! its permit accounting.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted request line + headers, bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body, bytes.
const MAX_BODY: usize = 1024 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Decoded path, query string stripped (`/v1/run/fig13`).
    pub path: String,
    /// Raw query string after `?`, empty if absent.
    pub query: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

impl Request {
    /// The value of `key` in the query string (`?format=text&x=1`),
    /// percent-decoding not applied (the daemon's values are plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be served as HTTP.
#[derive(Debug)]
pub enum RequestError {
    /// Socket-level failure; no response is possible.
    Io(io::Error),
    /// Malformed or over-limit request; respond with this status.
    Bad {
        /// HTTP status code to answer with.
        status: u16,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// [`RequestError::Bad`] for malformed/over-limit requests (the caller
/// should answer with the carried status), [`RequestError::Io`] when the
/// socket itself failed.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);

    let mut head = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(RequestError::Bad {
                status: 400,
                reason: "truncated request",
            });
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD {
            return Err(RequestError::Bad {
                status: 431,
                reason: "request head too large",
            });
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Bad {
            status: 400,
            reason: "malformed request line",
        });
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad {
            status: 505,
            reason: "unsupported HTTP version",
        });
    }

    let mut content_length = 0usize;
    for header in lines {
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| RequestError::Bad {
                status: 400,
                reason: "bad content-length",
            })?;
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::Bad {
            status: 413,
            reason: "request body too large",
        });
    }

    let mut body_bytes = vec![0u8; content_length];
    reader.read_exact(&mut body_bytes)?;
    let body = String::from_utf8(body_bytes).map_err(|_| RequestError::Bad {
        status: 400,
        reason: "request body is not UTF-8",
    })?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
    })
}

/// One response to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra response headers (name, value); names must be lowercase
    /// ASCII tokens. `X-Request-Id` rides here.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body,
        }
    }

    /// A response in Prometheus text exposition format 0.0.4.
    pub fn prometheus(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body,
        }
    }

    /// Adds a response header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Writes `response` and flushes; the connection is then closed by drop.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn roundtrip(raw: &str) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
            s // keep alive until the reader is done
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        drop(writer.join().unwrap());
        req
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = roundtrip("GET /v1/run/fig13?format=text&x=1 HTTP/1.1\r\nhost: h\r\n\r\n")
            .expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/run/fig13");
        assert_eq!(req.query_param("format"), Some("text"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("absent"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body() {
        let body = "{\"a\":1}";
        let raw = format!(
            "POST /v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = roundtrip(&raw).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body);
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(
            roundtrip("NOT-HTTP\r\n\r\n"),
            Err(RequestError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            roundtrip("GET / HTTP/2.0\r\n\r\n"),
            Err(RequestError::Bad { status: 505, .. })
        ));
        let huge = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "y".repeat(MAX_HEAD));
        assert!(matches!(
            roundtrip(&huge),
            Err(RequestError::Bad { status: 431, .. })
        ));
        assert!(matches!(
            roundtrip("POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n"),
            Err(RequestError::Bad { status: 413, .. })
        ));
    }

    #[test]
    fn response_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            buf
        });
        let (mut conn, _) = listener.accept().unwrap();
        write_response(
            &mut conn,
            &Response::json(200, "{\"ok\":true}".to_string())
                .with_header("x-request-id", "7".to_string()),
        )
        .unwrap();
        drop(conn);
        let wire = reader.join().unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"), "{wire}");
        assert!(wire.contains("content-type: application/json\r\n"));
        assert!(wire.contains("content-length: 11\r\n"));
        assert!(wire.contains("x-request-id: 7\r\n"));
        assert!(wire.ends_with("{\"ok\":true}"));
    }
}
