#![warn(missing_docs)]
//! Reproduction harness: regenerates every table and figure of the paper
//! and reports paper-vs-measured values.
//!
//! Each `table*`/`fig*` function returns a [`Report`] that renders as an
//! aligned text table with paper anchors in its notes. The `repro` binary
//! prints any subset:
//!
//! ```text
//! cargo run -p stream-repro --bin repro -- all
//! cargo run -p stream-repro --bin repro -- fig13 table5
//! ```

mod app_figs;
mod cost_figs;
mod extras;
mod kernel_figs;
mod report;
mod verify_figs;

pub use app_figs::{fig15, headline};
pub use cost_figs::{calibration, fig10, fig11, fig12, fig6, fig7, fig8, fig9, table1, table3};
pub use extras::{
    ablation_memory, ablation_switch, ablation_swp, bandwidth, fft_exchange, full_custom,
    multiproc, projection, register_org, scaled_datasets, short_streams,
};
pub use kernel_figs::{fig13, fig14, table2, table4, table5, FIG13_NS, FIG14_CS};
pub use report::Report;
pub use verify_figs::verify;

/// Every experiment id: the paper's artifacts in paper order, then the
/// extension experiments.
pub const EXPERIMENTS: [&str; 29] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "calibration",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table5",
    "fig15",
    "headline",
    "bandwidth",
    "full_custom",
    "projection",
    "ablation_switch",
    "ablation_swp",
    "scaled_datasets",
    "short_streams",
    "ablation_memory",
    "multiproc",
    "register_org",
    "fft_exchange",
    "verify",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates first).
pub fn run(id: &str) -> Report {
    match id {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "calibration" => calibration(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "table5" => table5(),
        "fig15" => fig15(),
        "headline" => headline(),
        "bandwidth" => bandwidth(),
        "full_custom" => full_custom(),
        "projection" => projection(),
        "ablation_switch" => ablation_switch(),
        "ablation_swp" => ablation_swp(),
        "scaled_datasets" => scaled_datasets(),
        "short_streams" => short_streams(),
        "ablation_memory" => ablation_memory(),
        "multiproc" => multiproc(),
        "register_org" => register_org(),
        "fft_exchange" => fft_exchange(),
        "verify" => verify(),
        other => panic!("unknown experiment {other}; known: {EXPERIMENTS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs() {
        // The heavyweight ones (fig13..fig15) are covered by their module
        // tests; here just check the cheap ones dispatch.
        for id in ["table1", "table3", "table4", "calibration", "fig6", "fig11"] {
            let r = run(id);
            assert_eq!(r.id, id);
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let _ = run("fig99");
    }
}
