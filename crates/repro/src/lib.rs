#![warn(missing_docs)]
//! Reproduction harness: regenerates every table and figure of the paper
//! and reports paper-vs-measured values.
//!
//! Each experiment is named by a typed [`ExperimentId`] and returns a
//! [`Report`] that renders as an aligned text table with paper anchors in
//! its notes. Grid-shaped experiments express their cells as jobs on a
//! [`stream_grid::Engine`], so they parallelize across worker threads while
//! rendering **byte-identically** to a serial run (ordered reduction +
//! deterministic cache counters), and all schedule compilation goes through
//! the process-wide compiled-kernel cache. The `repro` binary prints any
//! subset:
//!
//! ```text
//! cargo run -p stream-repro --bin repro -- all
//! cargo run -p stream-repro --bin repro -- --jobs 4 fig13 table5
//! ```
//!
//! Library use:
//!
//! ```
//! use stream_repro::{run, ExperimentId, Query};
//!
//! let report = run(ExperimentId::Table4);
//! assert_eq!(report.id(), "table4");
//! assert!("fig99".parse::<ExperimentId>().is_err());
//! let reports = Query::new().experiment(ExperimentId::Table1).jobs(1).run();
//! assert_eq!(reports[0].id(), "table1");
//! ```

mod app_figs;
mod cost_figs;
mod experiment;
mod extras;
mod kernel_figs;
mod query;
mod report;
mod sweep;
mod tune_figs;
mod verify_figs;

pub use app_figs::{fig15, headline};
pub use cost_figs::{calibration, fig10, fig11, fig12, fig6, fig7, fig8, fig9, table1, table3};
pub use experiment::{ExperimentId, UnknownExperiment};
pub use extras::{
    ablation_memory, ablation_switch, ablation_swp, bandwidth, fft_exchange, full_custom,
    multiproc, projection, register_org, scaled_datasets, short_streams,
};
pub use kernel_figs::{fig13, fig14, table2, table4, table5, FIG13_NS, FIG14_CS};
pub use query::{Constraint, Metric, Query, SpaceAnswer, SpaceQuery, UnknownMetric};
pub use report::Report;
pub use tune_figs::tune;
pub use verify_figs::verify;

use stream_grid::Engine;
use sweep::Ctx;

/// Every experiment id string, derived from [`ExperimentId::ALL`] at
/// compile time so it can never drift from the enum.
pub const EXPERIMENTS: [&str; ExperimentId::ALL.len()] = {
    let mut out = [""; ExperimentId::ALL.len()];
    let mut i = 0;
    while i < out.len() {
        out[i] = ExperimentId::ALL[i].name();
        i += 1;
    }
    out
};

/// Runs one experiment on `engine`: its grid cells become engine jobs and
/// its kernels compile through the engine's shared cache. The rendered
/// report is identical for every worker count.
pub fn run_with(id: ExperimentId, engine: &Engine) -> Report {
    let ctx = Ctx::new(engine);
    let mut r = match id {
        ExperimentId::Table1 => table1(),
        ExperimentId::Table2 => table2(),
        ExperimentId::Table3 => table3(),
        ExperimentId::Table4 => table4(),
        ExperimentId::Calibration => calibration(),
        ExperimentId::Fig6 => fig6(),
        ExperimentId::Fig7 => fig7(),
        ExperimentId::Fig8 => fig8(),
        ExperimentId::Fig9 => fig9(),
        ExperimentId::Fig10 => fig10(),
        ExperimentId::Fig11 => fig11(),
        ExperimentId::Fig12 => fig12(),
        ExperimentId::Fig13 => kernel_figs::fig13_impl(&ctx),
        ExperimentId::Fig14 => kernel_figs::fig14_impl(&ctx),
        ExperimentId::Table5 => kernel_figs::table5_impl(&ctx),
        ExperimentId::Fig15 => app_figs::fig15_impl(&ctx),
        ExperimentId::Headline => app_figs::headline_impl(&ctx),
        ExperimentId::Bandwidth => bandwidth(),
        ExperimentId::FullCustom => full_custom(),
        ExperimentId::Projection => projection(),
        ExperimentId::AblationSwitch => ablation_switch(),
        ExperimentId::AblationSwp => extras::ablation_swp_impl(&ctx),
        ExperimentId::ScaledDatasets => extras::scaled_datasets_impl(&ctx),
        ExperimentId::ShortStreams => extras::short_streams_impl(&ctx),
        ExperimentId::AblationMemory => extras::ablation_memory_impl(&ctx),
        ExperimentId::Multiproc => extras::multiproc_impl(&ctx),
        ExperimentId::RegisterOrg => register_org(),
        ExperimentId::FftExchange => extras::fft_exchange_impl(&ctx),
        ExperimentId::Tune => tune_figs::tune_impl(&ctx),
        ExperimentId::Verify => verify_figs::verify_impl(&ctx),
    };
    ctx.finish(&mut r);
    r
}

/// Runs one experiment on an engine sized to the host's parallelism.
pub fn run(id: ExperimentId) -> Report {
    run_with(id, &Engine::with_default_parallelism())
}

/// Runs several experiments on `engine`. Independent experiments run
/// concurrently as engine jobs (each experiment's own grid sweeps nest
/// inside the same engine, bounded by its permit pool); reports come back
/// in `ids` order.
pub fn run_many(ids: &[ExperimentId], engine: &Engine) -> Vec<Report> {
    let sweep = engine.map(ids.to_vec(), |id| run_with(id, engine));
    sweep.results
}

/// Runs every experiment, paper order, on `engine`.
pub fn run_all(engine: &Engine) -> Vec<Report> {
    run_many(&ExperimentId::ALL, engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Experiments whose full grids are too heavy for this smoke test;
    /// each is exercised by its own module test instead.
    const HEAVYWEIGHT: [ExperimentId; 13] = [
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Table5,
        ExperimentId::Fig15,
        ExperimentId::Headline,
        ExperimentId::AblationSwp,
        ExperimentId::ScaledDatasets,
        ExperimentId::ShortStreams,
        ExperimentId::AblationMemory,
        ExperimentId::Multiproc,
        ExperimentId::FftExchange,
        ExperimentId::Tune,
        ExperimentId::Verify,
    ];

    #[test]
    fn every_listed_experiment_runs() {
        // Every variant dispatches; the heavyweight grids are carved out to
        // their module tests but still must parse and be listed.
        let mut ran = 0usize;
        for id in ExperimentId::ALL {
            assert!(EXPERIMENTS.contains(&id.name()));
            if HEAVYWEIGHT.contains(&id) {
                continue;
            }
            let r = run(id);
            assert_eq!(r.id, id.name());
            ran += 1;
        }
        assert_eq!(ran, ExperimentId::ALL.len() - HEAVYWEIGHT.len());
    }

    #[test]
    fn experiments_const_tracks_the_enum() {
        assert_eq!(EXPERIMENTS.len(), ExperimentId::ALL.len());
        for (name, id) in EXPERIMENTS.iter().zip(ExperimentId::ALL) {
            assert_eq!(*name, id.name());
            assert_eq!(name.parse::<ExperimentId>(), Ok(id));
        }
    }

    #[test]
    fn unknown_experiment_errors() {
        let err = "fig99".parse::<ExperimentId>().unwrap_err();
        assert_eq!(err.input, "fig99");
        assert_eq!(err.suggestion, Some(ExperimentId::Fig9));
        assert!(err.to_string().contains("unknown experiment"));
    }
}
