//! Extension experiments beyond the paper's tables and figures: the
//! bandwidth-hierarchy check (Section 2.2), the full-custom sensitivity
//! discussion (Section 4.3), the paper's proposed future work (sparse
//! crossbars), a software-pipelining ablation, and the dataset-scaling
//! claim of Section 5.3.

use crate::kernel_figs::FIG14_CS;
use crate::sweep::Ctx;
use crate::{ExperimentId, Report};
use stream_apps::{conv, depth, qrd};
use stream_kernels::KernelId;
use stream_machine::{BandwidthHierarchy, Machine, SystemParams};
use stream_sched::CompileOptions;
use stream_sim::simulate;
use stream_vlsi::{CostModel, ProcessNode, Projection, RegisterOrgComparison, Shape, TechParams};

/// The three-tier bandwidth hierarchy across the design space
/// (Section 2.2's 2.3/19.2/326.4 GB/s story, recomputed per machine).
pub fn bandwidth() -> Report {
    let sys = SystemParams::paper_2007();
    let mut r = Report::new(
        "bandwidth",
        "Data bandwidth hierarchy (GB/s at 1 GHz; memory : SRF : LRF)",
    )
    .with_headers([
        "machine",
        "memory",
        "SRF",
        "LRF",
        "SRF/mem",
        "LRF/SRF",
        "peak ops/mem word",
    ]);
    for shape in [
        Shape::new(8, 5),
        Shape::new(32, 5),
        Shape::new(128, 5),
        Shape::new(128, 10),
    ] {
        let m = Machine::paper(shape);
        let h = BandwidthHierarchy::compute(&m, &sys);
        r.row([
            shape.to_string(),
            format!("{:.1}", BandwidthHierarchy::gbps(h.memory_words, 1.0)),
            format!("{:.1}", BandwidthHierarchy::gbps(h.srf_words, 1.0)),
            format!("{:.1}", BandwidthHierarchy::gbps(h.lrf_words, 1.0)),
            format!("{:.1}x", h.srf_over_memory()),
            format!("{:.1}x", h.lrf_over_srf()),
            format!("{:.0}", h.ops_per_memory_word(&m)),
        ]);
    }
    r.note("Imagine (paper Section 2.2): 2.3 / 19.2 / 326.4 GB/s; applications need 57.9-473.3 ops/word");
    r
}

/// Full-custom methodology (20 FO4 clock): the paper argues relative
/// area/energy scaling is methodology-independent while communication
/// latencies in cycles grow.
pub fn full_custom() -> Report {
    let std_cell = CostModel::paper();
    let custom = CostModel::new(TechParams::full_custom());
    let mut r = Report::new(
        "full_custom",
        "Standard-cell (45 FO4) vs full-custom (20 FO4) methodology",
    )
    .with_headers(["metric", "std-cell", "full-custom"]);
    let ratio = |model: &CostModel, f: &dyn Fn(&CostModel, Shape) -> f64| -> f64 {
        f(model, Shape::HEADLINE_640) / f(model, Shape::BASELINE)
    };
    let area = |m: &CostModel, s: Shape| m.evaluate(s).area.per_alu();
    let energy = |m: &CostModel, s: Shape| m.evaluate(s).energy.per_alu_op();
    r.row([
        "area/ALU, C=128 N=5 vs C=8 N=5".to_string(),
        format!("{:.3}", ratio(&std_cell, &area)),
        format!("{:.3}", ratio(&custom, &area)),
    ]);
    r.row([
        "energy/op, C=128 N=5 vs C=8 N=5".to_string(),
        format!("{:.3}", ratio(&std_cell, &energy)),
        format!("{:.3}", ratio(&custom, &energy)),
    ]);
    for shape in [Shape::BASELINE, Shape::HEADLINE_640] {
        let ds = std_cell.evaluate(shape).delay;
        let dc = custom.evaluate(shape).delay;
        r.row([
            format!("COMM latency at {shape} (cycles)"),
            format!("{}", ds.intercluster_cycles()),
            format!("{}", dc.intercluster_cycles()),
        ]);
        r.row([
            format!("extra intracluster stages at {shape}"),
            format!("{}", ds.extra_intracluster_stages()),
            format!("{}", dc.extra_intracluster_stages()),
        ]);
    }
    r.note(
        "paper Section 4.3: similar relative results, higher latencies in cycles for full custom",
    );
    r
}

/// Sparse-crossbar ablation — the paper's proposed future work: how much
/// area/energy do non-fully-connected switches save at scale?
pub fn ablation_switch() -> Report {
    let mut r = Report::new(
        "ablation_switch",
        "Sparse crossbar ablation (C=128 N=10; relative to full crossbar)",
    )
    .with_headers(["density", "area/ALU", "energy/op", "switch area share"]);
    let shape = Shape::HEADLINE_1280;
    let full = CostModel::paper().evaluate(shape);
    for density in [1.0f64, 0.75, 0.5, 0.25] {
        let model = CostModel::new(TechParams::sparse_crossbar(density));
        let c = model.evaluate(shape);
        let switch_share = (c.area.intercluster_switch
            + shape.c() * c.area.cluster.intracluster_switch)
            / c.area.total();
        r.row([
            format!("{density:.2}"),
            format!("{:.3}", c.area.per_alu() / full.area.per_alu()),
            format!("{:.3}", c.energy.per_alu_op() / full.energy.per_alu_op()),
            format!("{:.1}%", switch_share * 100.0),
        ]);
    }
    r.note("paper conclusion: non-fully-connected crossbars are a path to higher efficiency");
    r
}

/// Software-pipelining ablation: kernel throughput with and without modulo
/// scheduling on the baseline machine.
pub(crate) fn ablation_swp_impl(ctx: &Ctx) -> Report {
    let machine = Machine::baseline();
    let mut r = Report::new(
        "ablation_swp",
        "Software pipelining ablation (C=8 N=5; elements/cycle/cluster)",
    )
    .with_headers(["kernel", "with SWP", "without SWP", "SWP gain"]);
    let no_swp = CompileOptions::new().without_software_pipelining();
    // One job per kernel; both compiles go through the shared cache (the
    // SWP build is the same schedule Figures 13/14 measure).
    let machine = &machine;
    let no_swp = &no_swp;
    let pairs = ctx.map(KernelId::ALL.to_vec(), |id| {
        let k = id.build(machine);
        let swp = ctx.scope.compile_default(&k, machine).expect("schedules");
        let flat = ctx.scope.compile(&k, machine, no_swp).expect("schedules");
        (
            swp.elements_per_cycle_per_cluster(),
            flat.elements_per_cycle_per_cluster(),
        )
    });
    for (id, (swp, flat)) in KernelId::ALL.iter().zip(pairs) {
        r.row([
            id.name().to_string(),
            format!("{swp:.3}"),
            format!("{flat:.3}"),
            format!("{:.1}x", swp / flat),
        ]);
    }
    r.note("Section 5.1 relies on software pipelining + unrolling to convert DLP into ILP");
    r
}

/// The software-pipelining ablation, on an engine sized to the host.
pub fn ablation_swp() -> Report {
    crate::run(ExperimentId::AblationSwp)
}

/// Section 5.3's closing claim: if dataset size scaled with machine size,
/// application speedups would track kernel speedups. Scales DEPTH's and
/// CONV's stream lengths (image width) with C and compares per-unit-work
/// speedups against the fixed-dataset runs.
pub(crate) fn scaled_datasets_impl(ctx: &Ctx) -> Report {
    let sys = SystemParams::paper_2007();
    let mut r = Report::new(
        "scaled_datasets",
        "Fixed vs machine-scaled datasets (speedup over C=8 N=5)",
    )
    .with_headers([
        "machine",
        "DEPTH fixed",
        "DEPTH scaled",
        "CONV fixed",
        "CONV scaled",
    ]);

    // Scaling the image *width* lengthens every stream a kernel call
    // consumes — exactly the short-stream remedy Section 5.3 describes
    // (scaling rows would only add more equally-short calls).
    let sys = &sys;
    let depth_cycles = |c: u32, width: usize| -> u64 {
        let cfg = depth::Config {
            width,
            height: 384,
            disparities: 16,
        };
        let m = Machine::paper(Shape::new(c, 5));
        simulate(&depth::program(&cfg, &m).program, &m, sys)
            .expect("simulates")
            .cycles
    };
    let conv_cycles = |c: u32, width: usize| -> u64 {
        let cfg = conv::Config { width, height: 384 };
        let m = Machine::paper(Shape::new(c, 5));
        simulate(&conv::program(&cfg, &m).program, &m, sys)
            .expect("simulates")
            .cycles
    };

    // One job per (machine, app, dataset) simulation; the C=8 fixed cells
    // double as the baselines (scale there is 1).
    let cells: Vec<(u32, bool, usize)> = FIG14_CS
        .iter()
        .flat_map(|&c| {
            let scale = (c / 8) as usize;
            [
                (c, false, 512),
                (c, false, 512 * scale),
                (c, true, 512),
                (c, true, 512 * scale),
            ]
        })
        .collect();
    let cycles = ctx.map(cells, |(c, is_conv, width)| {
        if is_conv {
            conv_cycles(c, width)
        } else {
            depth_cycles(c, width)
        }
    });
    let base_depth = cycles[0];
    let base_conv = cycles[2];
    for (ci, &c) in FIG14_CS.iter().enumerate() {
        let scale = (c / 8) as usize;
        let at = |j: usize| cycles[ci * 4 + j];
        // Per-unit-work speedup for the scaled dataset: (work ratio) /
        // (time ratio).
        let depth_fixed = base_depth as f64 / at(0) as f64;
        let depth_scaled = scale as f64 * base_depth as f64 / at(1) as f64;
        let conv_fixed = base_conv as f64 / at(2) as f64;
        let conv_scaled = scale as f64 * base_conv as f64 / at(3) as f64;
        r.row([
            format!("C={c}"),
            format!("{depth_fixed:.1}x"),
            format!("{depth_scaled:.1}x"),
            format!("{conv_fixed:.1}x"),
            format!("{conv_scaled:.1}x"),
        ]);
    }
    r.note("paper: kernel scaling suggests larger application speedups if dataset size scaled with ALUs");
    r
}

/// The dataset-scaling comparison, on an engine sized to the host.
pub fn scaled_datasets() -> Report {
    crate::run(ExperimentId::ScaledDatasets)
}

/// Short-stream effects (Section 5.3 / Owens et al., reference 14): kernel call
/// efficiency (steady-state cycles / total call cycles) versus stream
/// length, per machine. As `C` grows, a fixed stream length covers fewer
/// loop iterations per call and the fixed overheads dominate.
pub(crate) fn short_streams_impl(ctx: &Ctx) -> Report {
    let mut r = Report::new(
        "short_streams",
        "Kernel call efficiency vs stream length (FFT kernel)",
    )
    .with_headers(["records", "C=8 N=5", "C=32 N=5", "C=128 N=5", "C=128 N=10"]);
    // One job per machine: compile the FFT kernel through the shared cache.
    let compiled = ctx.map(
        vec![(8u32, 5u32), (32, 5), (128, 5), (128, 10)],
        |(c, n)| {
            let m = Machine::paper(Shape::new(c, n));
            ctx.scope
                .compile_default(&KernelId::Fft.build(&m), &m)
                .expect("schedules")
        },
    );
    for records in [64u64, 256, 1024, 4096, 16384, 65536] {
        let mut row = vec![records.to_string()];
        for k in &compiled {
            let eff = k.inner_loop_cycles(records) as f64 / k.call_cycles(records) as f64;
            row.push(format!("{:.0}%", eff * 100.0));
        }
        r.row(row);
    }
    r.note("paper: with short streams a growing fraction of time goes to priming, prologue/epilogue and pipeline fill");
    r
}

/// The short-stream study, on an engine sized to the host.
pub fn short_streams() -> Report {
    crate::run(ExperimentId::ShortStreams)
}

/// The two FFT formulations: the local radix-4 kernel (partners gathered
/// into one record by SRF addressing) versus the radix-2 exchange kernel
/// (partners fetched over the intercluster switch). The exchange version
/// pays the pipelined COMM latency, which grows with the cluster grid —
/// the paper's FFT mixes both styles (Table 2: 40 comms per iteration).
pub(crate) fn fft_exchange_impl(ctx: &Ctx) -> Report {
    let mut r = Report::new(
        "fft_exchange",
        "FFT stage formulations: local gather vs intercluster exchange",
    )
    .with_headers([
        "machine",
        "COMM latency",
        "local: pts/cycle/cluster",
        "exchange: pts/cycle/cluster",
        "exchange penalty",
    ]);
    // One job per cluster count: both formulations compiled per machine.
    let rows = ctx.map(FIG14_CS.to_vec(), |c| {
        let machine = Machine::paper(Shape::new(c, 5));
        let local = ctx
            .scope
            .compile_default(&stream_kernels::fft::kernel(&machine), &machine)
            .expect("schedules");
        let exch = ctx
            .scope
            .compile_default(&stream_kernels::fft::exchange_kernel(&machine, 1), &machine)
            .expect("schedules");
        // Points per cycle: the radix-4 record covers four points, the
        // exchange record one.
        let local_pts = 4.0 * local.elements_per_cycle_per_cluster();
        let exch_pts = exch.elements_per_cycle_per_cluster();
        (
            machine.latency(stream_machine::OpClass::Comm),
            local_pts,
            exch_pts,
        )
    });
    for (&c, (comm, local_pts, exch_pts)) in FIG14_CS.iter().zip(rows) {
        r.row([
            format!("C={c} N=5"),
            format!("{comm}"),
            format!("{local_pts:.2}"),
            format!("{exch_pts:.2}"),
            format!("{:.1}x", local_pts / exch_pts),
        ]);
    }
    r.note("the local form leans on SRF gather bandwidth; the exchange form on the intercluster switch");
    r
}

/// The FFT formulation comparison, on an engine sized to the host.
pub fn fft_exchange() -> Report {
    crate::run(ExperimentId::FftExchange)
}

/// Register organization comparison (Section 3's "195 times less area, 430
/// times less energy" citation, re-derived with a consistent port-scaled
/// array model on both sides).
pub fn register_org() -> Report {
    let mut r = Report::new(
        "register_org",
        "Unified register file vs stream register organization",
    )
    .with_headers([
        "shape",
        "RF area ratio",
        "RF energy ratio",
        "incl. switch (area)",
        "incl. switch (energy)",
    ]);
    for shape in [
        Shape::new(8, 6),
        Shape::new(8, 5),
        Shape::new(32, 6),
        Shape::new(128, 10),
    ] {
        let cmp = RegisterOrgComparison::compute(shape, &TechParams::paper());
        r.row([
            shape.to_string(),
            format!("{:.0}x", cmp.area_ratio),
            format!("{:.0}x", cmp.energy_ratio),
            format!("{:.0}x", cmp.area_ratio_with_switch),
            format!("{:.1}x", cmp.energy_ratio_with_switch),
        ]);
    }
    r.note("paper (C=8 N=6, 48 ALUs): 195x less area, 430x less energy, 8% performance cost");
    r
}

/// Physical projection across the process roadmap — the paper's conclusion
/// quantified: peak TFLOPs, die area, and power per node.
pub fn projection() -> Report {
    let mut r = Report::new(
        "projection",
        "Process-node projection (Table 1 model de-normalized)",
    )
    .with_headers([
        "machine",
        "node",
        "clock",
        "peak GOPS",
        "die mm^2",
        "full-issue W",
        "W @ 20% activity",
    ]);
    for shape in [Shape::BASELINE, Shape::HEADLINE_640, Shape::HEADLINE_1280] {
        for node in ProcessNode::roadmap() {
            let p = Projection::compute(shape, &node);
            r.row([
                shape.to_string(),
                node.name.to_string(),
                format!("{:.2} GHz", p.clock_ghz),
                format!("{:.0}", p.peak_gops),
                format!("{:.0}", p.die_mm2),
                format!("{:.1}", p.full_activity_watts),
                format!("{:.1}", p.watts_at_activity(0.2)),
            ]);
        }
    }
    r.note("paper conclusion: by 2007 (45nm), 1280 ALUs reach >1 TFLOPs under 10 W (application-level activity)");
    r.note("Imagine sanity: the C=8 N=5 row at 180nm should look like the prototype (~0.25 GHz, a few W)");
    r
}

/// Memory access-pattern sensitivity (paper reference 17, memory access
/// scheduling): the same QRD program with its strip gathers treated as
/// sequential (a perfect access scheduler), strided (the default), and
/// random (no scheduling).
pub(crate) fn ablation_memory_impl(ctx: &Ctx) -> Report {
    use stream_sim::{AccessPattern, ProgramBuilder};
    let mut r = Report::new(
        "ablation_memory",
        "DRAM access-pattern sensitivity (one trailing-matrix sweep worth of traffic)",
    )
    .with_headers(["pattern", "cycles", "vs sequential"]);
    let machine = Machine::baseline();
    let sys = SystemParams::paper_2007();
    // A strip-sweep-shaped program: 32 strip loads + compute + stores.
    let kernel = ctx
        .scope
        .compile_default(&stream_apps::kernels::coldot(&machine), &machine)
        .expect("schedules");
    let machine = &machine;
    let sys = &sys;
    let kernel = &kernel;
    let patterns = [
        ("sequential", AccessPattern::Sequential),
        ("strided", AccessPattern::Strided),
        ("random", AccessPattern::Random),
    ];
    // One job per access pattern.
    let all_cycles = ctx.map(patterns.to_vec(), |(_, pattern)| {
        let mut p = ProgramBuilder::new();
        for i in 0..32 {
            let strip = p.load_patterned(format!("strip{i}"), 2048, pattern);
            let v = p.resident(256);
            let dots = p.kernel(kernel, &[strip, v], &[8], 256);
            p.store_patterned(dots[0], pattern);
        }
        simulate(&p.finish(), machine, sys)
            .expect("simulates")
            .cycles
    });
    let seq = all_cycles[0];
    for ((name, _), cycles) in patterns.iter().zip(all_cycles) {
        r.row([
            name.to_string(),
            cycles.to_string(),
            format!("{:.2}x", cycles as f64 / seq as f64),
        ]);
    }
    r.note("memory access scheduling is what keeps stream loads near the sequential row");
    r
}

/// The access-pattern ablation, on an engine sized to the host.
pub fn ablation_memory() -> Report {
    crate::run(ExperimentId::AblationMemory)
}

/// The paper's second future-work question: one big stream processor vs
/// several smaller ones on the same die. Cost side from the VLSI model
/// (M independent processors have no shared intercluster switch); the
/// performance side runs DEPTH partitioned across the processors (row
/// bands, shared memory bandwidth) and QRD pinned to one processor (its
/// reflector chain does not partition).
pub(crate) fn multiproc_impl(ctx: &Ctx) -> Report {
    let sys = SystemParams::paper_2007();
    let mut r = Report::new(
        "multiproc",
        "One big processor vs M smaller ones (640 ALUs total, N=5)",
    )
    .with_headers([
        "config",
        "area/ALU",
        "energy/op",
        "COMM cycles",
        "DEPTH speedup",
        "QRD speedup",
    ]);
    let mono = CostModel::paper().evaluate(Shape::new(128, 5));
    let sys = &sys;
    let bases = ctx.map(vec![false, true], |is_qrd| {
        let base_machine = Machine::baseline();
        let program = if is_qrd {
            qrd::program(&qrd::Config::paper(), &base_machine).program
        } else {
            depth::program(&depth::Config::paper(), &base_machine).program
        };
        simulate(&program, &base_machine, sys)
            .expect("simulates")
            .cycles
    });
    let (base_depth, base_qrd) = (bases[0], bases[1]);

    // One job per processor count M.
    let rows = ctx.map(vec![1u32, 2, 4, 8, 16], |m| {
        let c = 128 / m;
        let shape = Shape::new(c, 5);
        let machine = Machine::paper(shape);
        // Shared memory: each processor sees 1/M of the channel.
        let shared = SystemParams {
            memory_words_per_cycle: sys.memory_words_per_cycle / f64::from(m),
            ..sys.clone()
        };
        // DEPTH partitions by rows; every processor runs height/M of it.
        let rows = 384 / m as usize;
        let cfg = depth::Config {
            width: 512,
            height: rows.max(8),
            disparities: 16,
        };
        let part = simulate(&depth::program(&cfg, &machine).program, &machine, &shared)
            .expect("simulates")
            .cycles;
        // QRD stays on one processor (full memory bandwidth, smaller array).
        let q = simulate(
            &qrd::program(&qrd::Config::paper(), &machine).program,
            &machine,
            sys,
        )
        .expect("simulates")
        .cycles;
        (m, part, q)
    });
    for (m, part, q) in rows {
        let c = 128 / m;
        let cost = CostModel::paper().evaluate(Shape::new(c, 5));
        let machine = Machine::paper(Shape::new(c, 5));
        let depth_speedup = base_depth as f64 / part as f64;
        let qrd_speedup = base_qrd as f64 / q as f64;
        r.row([
            format!("{m} x C={c}"),
            format!(
                "{:.3}",
                f64::from(m) * cost.area.total()
                    / (128.0 * 5.0)
                    / (mono.area.total() / (128.0 * 5.0))
            ),
            format!("{:.3}", cost.energy.per_alu_op() / mono.energy.per_alu_op()),
            format!("{}", machine.intercluster_cycles()),
            format!("{depth_speedup:.1}x"),
            format!("{qrd_speedup:.1}x"),
        ]);
    }
    r.note("paper conclusion poses this comparison as future work; partitionable apps keep their speedup on M smaller processors (cheaper switches), serial-chain apps lose it");
    r
}

/// The multiprocessor comparison, on an engine sized to the host.
pub fn multiproc() -> Report {
    crate::run(ExperimentId::Multiproc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_patterns_order_correctly() {
        let r = ablation_memory();
        let at = |i: usize| -> f64 { r.rows[i][2].trim_end_matches('x').parse().unwrap() };
        assert_eq!(at(0), 1.0);
        assert!(at(1) >= at(0));
        assert!(at(2) > at(1));
    }

    #[test]
    fn multiproc_trades_partitionability_for_switch_cost() {
        let r = multiproc();
        assert_eq!(r.rows.len(), 5);
        let qrd = |i: usize| -> f64 { r.rows[i][5].trim_end_matches('x').parse().unwrap() };
        // QRD on one of 16 small processors is slower than on the big one.
        assert!(qrd(4) < qrd(0));
        // Per-ALU area of many small processors is not worse than the
        // monolith beyond a few percent (no giant intercluster switch).
        let area16: f64 = r.rows[4][1].parse().unwrap();
        assert!(area16 < 1.1);
    }

    #[test]
    fn projection_covers_roadmap() {
        let r = projection();
        assert_eq!(r.rows.len(), 12);
        // The 1280-ALU 45nm row is the paper's conclusion.
        let row = r
            .rows
            .iter()
            .find(|row| row[0] == "C=128 N=10" && row[1] == "45nm")
            .unwrap();
        let gops: f64 = row[3].parse().unwrap();
        assert!(gops > 1000.0);
    }

    #[test]
    fn bandwidth_hierarchy_report() {
        let r = bandwidth();
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn full_custom_needs_stages_at_baseline() {
        let r = full_custom();
        // 20 FO4 cycle: even the N=5 cluster needs an extra stage.
        let row = r
            .rows
            .iter()
            .find(|row| row[0].contains("extra intracluster stages at C=8"))
            .unwrap();
        assert_eq!(row[1], "0");
        assert_ne!(row[2], "0");
    }

    #[test]
    fn sparse_crossbars_save_area_and_energy() {
        let r = ablation_switch();
        let area_at = |i: usize| -> f64 { r.rows[i][1].parse().unwrap() };
        let energy_at = |i: usize| -> f64 { r.rows[i][2].parse().unwrap() };
        assert_eq!(area_at(0), 1.0);
        assert!(area_at(3) < area_at(0));
        assert!(energy_at(3) < energy_at(0));
    }

    #[test]
    fn swp_ablation_shows_multi_x_gains() {
        let r = ablation_swp();
        for row in &r.rows {
            let gain: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(gain >= 1.0, "{}: SWP gain {gain}", row[0]);
        }
        // At least one kernel gains more than 2x from SWP.
        let best: f64 = r
            .rows
            .iter()
            .map(|row| row[3].trim_end_matches('x').parse::<f64>().unwrap())
            .fold(0.0, f64::max);
        assert!(best > 2.0, "best SWP gain {best}");
    }
}
