//! The typed query API: the one public way to describe work.
//!
//! [`Query`] describes *which experiments to run, how parallel* — the CLI,
//! the library facade, and the `stream-serve` daemon all construct the same
//! `Query` and get the same byte-deterministic reports, so the three entry
//! points can never drift. [`SpaceQuery`] describes a *constrained
//! design-space question* over the paper's `(C, N)` grid ("argmin energy/op
//! subject to area/ALU ≤ X"), the interactive loop the paper runs by hand
//! across Figures 13–15.
//!
//! ```
//! use stream_repro::{ExperimentId, Query};
//!
//! let reports = Query::new().experiment(ExperimentId::Table4).jobs(1).run();
//! assert_eq!(reports.len(), 1);
//! assert_eq!(reports[0].id(), "table4");
//! ```

use crate::{run_many, ExperimentId, Report, FIG13_NS, FIG14_CS};
use std::fmt;
use std::str::FromStr;
use stream_grid::Engine;
use stream_vlsi::{CostModel, CostReport, Shape};

/// A description of experiment work: which experiments, on how many worker
/// threads. Construct with the builder methods, execute with [`Query::run`]
/// (or [`Query::run_on`] to share an engine). Reports come back in the
/// order the experiments were added and render byte-identically for every
/// worker count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Query {
    ids: Vec<ExperimentId>,
    jobs: Option<usize>,
}

impl Query {
    /// An empty query; add experiments with [`Query::experiment`] /
    /// [`Query::experiments`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Every experiment, paper order — what `repro all` runs.
    pub fn all() -> Self {
        Self::new().experiments(ExperimentId::ALL)
    }

    /// Adds one experiment.
    #[must_use]
    pub fn experiment(mut self, id: ExperimentId) -> Self {
        self.ids.push(id);
        self
    }

    /// Adds several experiments, preserving order.
    #[must_use]
    pub fn experiments(mut self, ids: impl IntoIterator<Item = ExperimentId>) -> Self {
        self.ids.extend(ids);
        self
    }

    /// Sets the worker-thread count (`--jobs N`); default is the host's
    /// available parallelism, and `1` is strictly serial.
    #[must_use]
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = Some(n.max(1));
        self
    }

    /// The experiments this query will run, in order.
    pub fn ids(&self) -> &[ExperimentId] {
        &self.ids
    }

    /// The explicitly requested worker count, if any.
    pub fn jobs_requested(&self) -> Option<usize> {
        self.jobs
    }

    /// An engine sized for this query.
    pub fn engine(&self) -> Engine {
        match self.jobs {
            Some(n) => Engine::new(n),
            None => Engine::with_default_parallelism(),
        }
    }

    /// Runs the query on its own engine; reports come back in query order.
    pub fn run(&self) -> Vec<Report> {
        self.run_on(&self.engine())
    }

    /// Runs the query on a shared engine (the daemon's usage: many queries,
    /// one permit-bounded engine).
    pub fn run_on(&self, engine: &Engine) -> Vec<Report> {
        run_many(&self.ids, engine)
    }
}

/// A scalar the VLSI cost model can score a shape by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Die area per ALU (normalized grids) — Figures 6, 9, 12.
    AreaPerAlu,
    /// Energy per ALU operation (units of `E_w`) — Figures 7, 10, 12.
    EnergyPerOp,
    /// Pipelined intercluster traversal latency in whole cycles.
    InterclusterDelay,
}

impl Metric {
    /// Every metric, in a stable order.
    pub const ALL: [Metric; 3] = [
        Metric::AreaPerAlu,
        Metric::EnergyPerOp,
        Metric::InterclusterDelay,
    ];

    /// The metric's wire/CLI name.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::AreaPerAlu => "area_per_alu",
            Metric::EnergyPerOp => "energy_per_op",
            Metric::InterclusterDelay => "intercluster_delay",
        }
    }

    /// Reads the metric off a cost report.
    pub fn of(self, report: &CostReport) -> f64 {
        match self {
            Metric::AreaPerAlu => report.area.per_alu(),
            Metric::EnergyPerOp => report.energy.per_alu_op(),
            Metric::InterclusterDelay => f64::from(report.delay.intercluster_cycles()),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for a metric name that names no [`Metric`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMetric {
    /// The name that failed to parse.
    pub input: String,
}

impl fmt::Display for UnknownMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown metric `{}`; known:", self.input)?;
        for m in Metric::ALL {
            write!(f, " {m}")?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownMetric {}

impl FromStr for Metric {
    type Err = UnknownMetric;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Metric::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| UnknownMetric {
                input: s.to_string(),
            })
    }
}

/// An upper bound on one metric: `metric ≤ max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// The bounded metric.
    pub metric: Metric,
    /// The inclusive upper bound.
    pub max: f64,
}

/// A constrained design-space question over the `(C, N)` grid: minimize one
/// [`Metric`] subject to upper bounds on others, the query the paper
/// answers by eyeballing its figures.
///
/// ```
/// use stream_repro::{Metric, SpaceQuery};
///
/// // Most energy-efficient shape whose area/ALU stays within 2x the best.
/// let best_area = SpaceQuery::minimize(Metric::AreaPerAlu).solve().unwrap();
/// let answer = SpaceQuery::minimize(Metric::EnergyPerOp)
///     .subject_to(Metric::AreaPerAlu, best_area.value * 2.0)
///     .solve()
///     .unwrap();
/// assert!(answer.feasible <= answer.evaluated);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceQuery {
    clusters: Vec<u32>,
    alus_per_cluster: Vec<u32>,
    minimize: Metric,
    constraints: Vec<Constraint>,
}

impl SpaceQuery {
    /// Minimizes `metric` over the paper's full grid (`C` of Figure 14 ×
    /// `N` of Figure 13); narrow with [`SpaceQuery::clusters`] /
    /// [`SpaceQuery::alus_per_cluster`].
    pub fn minimize(metric: Metric) -> Self {
        Self {
            clusters: FIG14_CS.to_vec(),
            alus_per_cluster: FIG13_NS.to_vec(),
            minimize: metric,
            constraints: Vec::new(),
        }
    }

    /// Restricts the cluster counts swept. Zero values are dropped (the
    /// cost model rejects degenerate shapes).
    #[must_use]
    pub fn clusters(mut self, cs: impl IntoIterator<Item = u32>) -> Self {
        self.clusters = cs.into_iter().filter(|&c| c > 0).collect();
        self
    }

    /// Restricts the ALUs-per-cluster counts swept. Zero values are
    /// dropped.
    #[must_use]
    pub fn alus_per_cluster(mut self, ns: impl IntoIterator<Item = u32>) -> Self {
        self.alus_per_cluster = ns.into_iter().filter(|&n| n > 0).collect();
        self
    }

    /// Adds an upper-bound constraint `metric ≤ max`.
    #[must_use]
    pub fn subject_to(mut self, metric: Metric, max: f64) -> Self {
        self.constraints.push(Constraint { metric, max });
        self
    }

    /// The metric being minimized.
    pub fn objective(&self) -> Metric {
        self.minimize
    }

    /// The constraints, in the order added.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the grid and returns the feasible argmin, or `None` when
    /// no shape satisfies every constraint. Deterministic: ties break
    /// toward smaller `(C, N)`, and the evaluation order is fixed.
    pub fn solve(&self) -> Option<SpaceAnswer> {
        let model = CostModel::paper();
        let mut best: Option<SpaceAnswer> = None;
        let mut evaluated = 0usize;
        let mut feasible = 0usize;
        for &c in &self.clusters {
            for &n in &self.alus_per_cluster {
                let shape = Shape::new(c, n);
                let report = model.evaluate(shape);
                evaluated += 1;
                if self
                    .constraints
                    .iter()
                    .any(|con| con.metric.of(&report) > con.max)
                {
                    continue;
                }
                feasible += 1;
                let value = self.minimize.of(&report);
                let wins = match &best {
                    None => true,
                    Some(b) => {
                        value < b.value
                            || (value == b.value
                                && (shape.clusters, shape.alus_per_cluster)
                                    < (b.shape.clusters, b.shape.alus_per_cluster))
                    }
                };
                if wins {
                    best = Some(SpaceAnswer {
                        shape,
                        value,
                        evaluated: 0,
                        feasible: 0,
                    });
                }
            }
        }
        best.map(|mut b| {
            b.evaluated = evaluated;
            b.feasible = feasible;
            b
        })
    }
}

/// The result of [`SpaceQuery::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceAnswer {
    /// The winning `(C, N)`.
    pub shape: Shape,
    /// The objective's value at the winner.
    pub value: f64,
    /// Grid cells evaluated.
    pub evaluated: usize,
    /// Cells that satisfied every constraint.
    pub feasible: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_runs_in_order_and_matches_run_many() {
        let q = Query::new()
            .experiments([ExperimentId::Table4, ExperimentId::Table1])
            .jobs(1);
        let reports = q.run();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].id(), "table4");
        assert_eq!(reports[1].id(), "table1");
        let direct = crate::run_many(
            &[ExperimentId::Table4, ExperimentId::Table1],
            &Engine::new(1),
        );
        assert_eq!(
            reports.iter().map(Report::to_string).collect::<Vec<_>>(),
            direct.iter().map(Report::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_covers_every_experiment() {
        assert_eq!(Query::all().ids(), &ExperimentId::ALL[..]);
        assert!(Query::new().ids().is_empty());
        assert!(Query::new().run().is_empty());
    }

    #[test]
    fn metric_names_roundtrip() {
        for m in Metric::ALL {
            assert_eq!(m.name().parse::<Metric>(), Ok(m));
        }
        let err = "joules".parse::<Metric>().unwrap_err();
        assert!(err.to_string().contains("energy_per_op"));
    }

    #[test]
    fn unconstrained_argmin_matches_a_hand_scan() {
        let answer = SpaceQuery::minimize(Metric::AreaPerAlu).solve().unwrap();
        assert_eq!(answer.evaluated, FIG14_CS.len() * FIG13_NS.len());
        assert_eq!(answer.feasible, answer.evaluated);
        let model = CostModel::paper();
        for &c in &FIG14_CS {
            for &n in &FIG13_NS {
                let v = Metric::AreaPerAlu.of(&model.evaluate(Shape::new(c, n)));
                assert!(answer.value <= v, "({c},{n}) beats the argmin");
            }
        }
    }

    #[test]
    fn constraints_bind_and_can_be_infeasible() {
        let free = SpaceQuery::minimize(Metric::EnergyPerOp).solve().unwrap();
        let model = CostModel::paper();
        let free_area = Metric::AreaPerAlu.of(&model.evaluate(free.shape));
        // Constrain area strictly below the free winner's: the answer must
        // move to a different (feasible) shape.
        let tight = SpaceQuery::minimize(Metric::EnergyPerOp)
            .subject_to(Metric::AreaPerAlu, free_area * 0.999)
            .solve();
        if let Some(t) = tight {
            assert_ne!(t.shape, free.shape);
            assert!(t.value >= free.value);
            assert!(t.feasible < t.evaluated);
        }
        // An impossible bound is cleanly infeasible.
        assert_eq!(
            SpaceQuery::minimize(Metric::EnergyPerOp)
                .subject_to(Metric::AreaPerAlu, 0.0)
                .solve(),
            None
        );
    }

    #[test]
    fn narrowed_grids_are_respected() {
        let a = SpaceQuery::minimize(Metric::InterclusterDelay)
            .clusters([8])
            .alus_per_cluster([5])
            .solve()
            .unwrap();
        assert_eq!(a.shape, Shape::new(8, 5));
        assert_eq!(a.evaluated, 1);
    }
}
