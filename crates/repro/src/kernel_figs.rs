//! Section 5.1/5.2 reproductions: Table 2 (kernel characteristics),
//! Figures 13 and 14 (kernel speedups), Table 5 (performance per area).

use crate::sweep::Ctx;
use crate::{ExperimentId, Report};
use std::sync::Arc;
use stream_ir::{execute_legacy, ExecConfig, Kernel, Scalar, StripMode, Tape, Ty};
use stream_kernels::KernelId;
use stream_machine::Machine;
use stream_sched::CompiledKernel;
use stream_vlsi::Shape;

/// Compiles a suite kernel for one machine through the sweep context's
/// shared cache, then runs a two-iteration functional smoke of the
/// compiled execution tape against the legacy oracle. In debug builds
/// every figure datapoint is also re-checked by the independent verifier.
fn compiled(ctx: &Ctx, id: KernelId, shape: Shape) -> Arc<CompiledKernel> {
    let machine = Machine::paper(shape);
    let kernel = id.build(&machine);
    let c = ctx
        .scope
        .compile_default(&kernel, &machine)
        .expect("suite kernels schedule on all paper machines");
    debug_assert!(
        !stream_sched::check_schedule(c.ddg(), c.schedule(), &machine).has_errors(),
        "{id:?} schedule fails independent verification"
    );
    tape_smoke(&kernel, shape.clusters as usize);
    c
}

/// Differential functional smoke: executes `kernel` for two SIMD
/// iterations through the compiled [`Tape`] and through the legacy
/// tree-walk oracle, and requires bit-identical results (same outputs or
/// the same error). Deterministic — it runs whether or not tracing is on,
/// so figure output never depends on the trace flag.
fn tape_smoke(kernel: &Kernel, clusters: usize) {
    if !kernel.param_tys().is_empty() {
        return; // parameterized kernels are exercised by their own tests
    }
    let iters = 2usize;
    let inputs: Vec<Vec<Scalar>> = kernel
        .inputs()
        .iter()
        .map(|d| {
            let words = iters * clusters * d.record_width as usize;
            (0..words)
                .map(|i| match d.ty {
                    Ty::I32 => Scalar::I32((i as i32 * 37) % 101 - 50),
                    Ty::F32 => Scalar::F32(i as f32 * 0.375 - 4.0),
                })
                .collect()
        })
        .collect();
    let cfg = ExecConfig::with_clusters(clusters);
    let bits = |outs: Vec<Vec<Scalar>>| -> Vec<Vec<(Ty, u32)>> {
        outs.into_iter()
            .map(|s| {
                s.into_iter()
                    .map(|w| match w {
                        Scalar::I32(v) => (Ty::I32, v as u32),
                        Scalar::F32(v) => (Ty::F32, v.to_bits()),
                    })
                    .collect()
            })
            .collect()
    };
    let tape = Tape::compile(kernel).execute(&[], &inputs, &cfg).map(&bits);
    let oracle = execute_legacy(kernel, &[], &inputs, &cfg).map(&bits);
    assert_eq!(
        tape,
        oracle,
        "tape/oracle divergence for {} at C={clusters}",
        kernel.name()
    );
    // Strip-parallel determinism: forced partitioning must be bit-exact
    // too (ineligible kernels silently run serial under Force).
    let stripped = Tape::compile(kernel)
        .with_strip_mode(StripMode::Force)
        .execute(&[], &inputs, &cfg)
        .map(&bits);
    assert_eq!(
        stripped,
        oracle,
        "strip/serial divergence for {} at C={clusters}",
        kernel.name()
    );
}

/// Table 2: kernel inner-loop characteristics, measured from our kernels,
/// with the paper's values alongside.
pub fn table2() -> Report {
    let machine = Machine::baseline();
    let mut r = Report::new(
        "table2",
        "Kernel Inner Loop Characteristics (ours vs paper)",
    )
    .with_headers([
        "kernel",
        "ALU ops",
        "SRF (per op)",
        "COMM (per op)",
        "SP (per op)",
        "paper ALU/SRF/COMM/SP",
    ]);
    let mut push = |name: &str, s: stream_ir::KernelStats, paper: Option<(u32, u32, u32, u32)>| {
        let per = |c: u32| format!("{} ({:.2})", c, s.per_alu_op(c));
        let paper = match paper {
            Some((a, srf, comm, sp)) => format!("{a}/{srf}/{comm}/{sp}"),
            None => "- (not in Table 2)".to_string(),
        };
        r.row([
            name.to_string(),
            s.alu_ops.to_string(),
            per(s.srf_accesses),
            per(s.comms),
            per(s.sp_accesses),
            paper,
        ]);
    };
    for id in KernelId::ALL {
        push(id.name(), id.build(&machine).stats(), id.paper_table2());
    }
    // DCT is the paper's fifth Table 2 kernel (not in the Figure 13/14
    // suite); our record is a whole 8x8 block (eight of the paper's rows).
    push(
        "DCT",
        stream_kernels::dct::kernel(&machine).stats(),
        Some(stream_kernels::dct::PAPER_TABLE2),
    );
    r.note("our kernels are real computations with the same op-mix character; exact counts differ (DESIGN.md)");
    r.note("our DCT record is a whole 8x8 block, i.e. eight of the paper's per-row iterations");
    r
}

/// Table 4: the kernel and application inventory.
pub fn table4() -> Report {
    let mut r =
        Report::new("table4", "Kernels and Applications").with_headers(["name", "description"]);
    for id in KernelId::ALL {
        r.row([id.name().to_string(), id.description().to_string()]);
    }
    for (name, desc) in [
        (
            "RENDER",
            "polygon rendering of a bowling pin with a procedural marble shader",
        ),
        ("DEPTH", "stereo depth extraction on a 512x384 pixel image"),
        ("CONV", "convolution filter on 512x384 pixel image"),
        ("QRD", "256x256 matrix decomposition"),
        ("FFT1K", "1024-point complex FFT"),
        ("FFT4K", "4096-point complex FFT"),
    ] {
        r.row([name.to_string(), desc.to_string()]);
    }
    r
}

/// The N values of Figure 13 and the C values of Figure 14.
pub const FIG13_NS: [u32; 4] = [2, 5, 10, 14];
/// Cluster counts of Figure 14 / Table 5 / Figure 15.
pub const FIG14_CS: [u32; 5] = [8, 16, 32, 64, 128];

fn harmonic_mean(values: &[f64]) -> f64 {
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// The shared shape of Figures 13 and 14: one sweep job per `(kernel,
/// sweep-point)` cell producing a throughput number, then rows of speedups
/// over the cell at `base` plus a harmonic-mean row.
fn kernel_speedup_grid(
    ctx: &Ctx,
    points: &[u32],
    base: u32,
    throughput: impl Fn(&Ctx, KernelId, u32) -> f64 + Sync,
) -> Vec<Vec<String>> {
    let cells: Vec<(KernelId, u32)> = KernelId::ALL
        .iter()
        .flat_map(|&id| points.iter().map(move |&p| (id, p)))
        .collect();
    let vals = ctx.map(cells, |(id, p)| throughput(ctx, id, p));
    let base_col = points.iter().position(|&p| p == base).expect("base swept");
    let mut per_point: Vec<Vec<f64>> = vec![Vec::new(); points.len()];
    let mut rows = Vec::new();
    for (ki, id) in KernelId::ALL.iter().enumerate() {
        let at = |pi: usize| vals[ki * points.len() + pi];
        let mut row = vec![id.name().to_string()];
        for (pi, col) in per_point.iter_mut().enumerate() {
            let v = at(pi) / at(base_col);
            col.push(v);
            row.push(format!("{v:.2}"));
        }
        rows.push(row);
    }
    let mut hm = vec!["Harmonic Mean".to_string()];
    for col in &per_point {
        hm.push(format!("{:.2}", harmonic_mean(col)));
    }
    rows.push(hm);
    rows
}

/// Figure 13: kernel inner-loop speedup under intracluster scaling (C = 8,
/// speedup over N = 5).
pub(crate) fn fig13_impl(ctx: &Ctx) -> Report {
    let mut r = Report::new(
        "fig13",
        "Intracluster Kernel Speedup (C=8, over N=5; per-cluster elements/cycle ratio)",
    )
    .with_headers(["kernel", "N=2", "N=5", "N=10", "N=14"]);
    r.rows = kernel_speedup_grid(ctx, &FIG13_NS, 5, |ctx, id, n| {
        compiled(ctx, id, Shape::new(8, n)).elements_per_cycle_per_cluster()
    });
    r.note("paper: near-linear to N=10, smaller speedups at N=14 (limited ILP, longer latencies)");
    r
}

/// Figure 13, on an engine sized to the host.
pub fn fig13() -> Report {
    crate::run(ExperimentId::Fig13)
}

/// Figure 14: kernel inner-loop speedup under intercluster scaling (N = 5,
/// machine-wide speedup over C = 8).
pub(crate) fn fig14_impl(ctx: &Ctx) -> Report {
    let mut r = Report::new(
        "fig14",
        "Intercluster Kernel Speedup (N=5, over C=8; machine elements/cycle ratio)",
    )
    .with_headers(["kernel", "C=8", "C=16", "C=32", "C=64", "C=128"]);
    r.rows = kernel_speedup_grid(ctx, &FIG14_CS, 8, |ctx, id, c| {
        compiled(ctx, id, Shape::new(c, 5)).elements_per_cycle()
    });
    r.note("paper: near-linear speedups to 128 clusters");
    r
}

/// Figure 14, on an engine sized to the host.
pub fn fig14() -> Report {
    crate::run(ExperimentId::Fig14)
}

/// Table 5: kernel performance per unit area (harmonic mean of the suite;
/// an area of exactly N ALUs sustaining N ops/cycle scores 1.0).
pub(crate) fn table5_impl(ctx: &Ctx) -> Report {
    let mut r = Report::new("table5", "Kernel performance per unit area (harmonic mean)")
        .with_headers(["N \\ C", "8", "16", "32", "64", "128"]);
    let paper: [(u32, [f64; 5]); 4] = [
        (2, [0.138, 0.135, 0.136, 0.132, 0.133]),
        (5, [0.133, 0.134, 0.135, 0.132, 0.126]),
        (10, [0.109, 0.111, 0.104, 0.101, 0.095]),
        (14, [0.065, 0.080, 0.073, 0.072, 0.067]),
    ];
    let cells: Vec<(u32, u32)> = FIG13_NS
        .iter()
        .flat_map(|&n| FIG14_CS.iter().map(move |&c| (n, c)))
        .collect();
    let hms = ctx.map(cells, |(n, c)| {
        let shape = Shape::new(c, n);
        let machine = Machine::paper(shape);
        let area = machine.cost().area;
        // Normalization unit: the area of one ALU datapath, so that a
        // chip of exactly N ALUs sustaining N ops/cycle scores 1.0.
        let alu_unit = area.cluster.alus / shape.n();
        let vals: Vec<f64> = KernelId::ALL
            .iter()
            .map(|&id| {
                let k = ctx
                    .scope
                    .compile_default(&id.build(&machine), &machine)
                    .expect("schedules");
                // ops/cycle relative to the chip area measured in ALUs.
                k.alu_ops_per_cycle() / (area.total() / alu_unit)
            })
            .collect();
        harmonic_mean(&vals)
    });
    for (ni, &n) in FIG13_NS.iter().enumerate() {
        let mut row = vec![format!("N={n}")];
        for ci in 0..FIG14_CS.len() {
            row.push(format!("{:.3}", hms[ni * FIG14_CS.len() + ci]));
        }
        r.row(row);
    }
    r.note("paper values:");
    for (n, vals) in paper {
        r.note(format!(
            "  paper N={n}: {}",
            vals.map(|v| format!("{v:.3}")).join("  ")
        ));
    }
    r.note("paper: N>5 configurations lose efficiency; intercluster scaling barely affects it");
    r
}

/// Table 5, on an engine sized to the host.
pub fn table5() -> Report {
    crate::run(ExperimentId::Table5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_kernels() {
        let r = table2();
        assert_eq!(r.rows.len(), 8); // seven suite kernels + DCT
    }

    #[test]
    fn fig13_is_monotone_up_to_n10_for_most_kernels() {
        let r = fig13();
        // Harmonic-mean row: N=10 speedup should be near 2x of N=5.
        let hm = r.rows.last().unwrap();
        let at = |i: usize| -> f64 { hm[i].parse().unwrap() };
        assert!(at(2) > 0.99); // N=5 column = 1.0
        assert!(at(3) > 1.5 && at(3) < 2.3, "N=10 HM {}", at(3));
    }

    #[test]
    fn fig14_near_linear() {
        let r = fig14();
        let hm = r.rows.last().unwrap();
        let c128: f64 = hm[5].parse().unwrap();
        assert!(c128 > 10.0 && c128 <= 16.5, "C=128 HM {c128}");
    }

    #[test]
    fn table5_efficiency_drops_with_n() {
        let r = table5();
        let first: f64 = r.rows[0][1].parse().unwrap(); // N=2, C=8
        let last: f64 = r.rows[3][1].parse().unwrap(); // N=14, C=8
        assert!(first > last, "N=2 ({first}) should beat N=14 ({last})");
    }
}
