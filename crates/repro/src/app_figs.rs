//! Section 5.3 reproductions: Figure 15 (application performance) and the
//! abstract's headline claims.

use crate::kernel_figs::FIG14_CS;
use crate::Report;
use stream_apps::AppId;
use stream_kernels::KernelId;
use stream_machine::{Machine, SystemParams};
use stream_sched::CompiledKernel;
use stream_sim::simulate;
use stream_vlsi::Shape;

fn cycles(id: AppId, shape: Shape) -> (u64, f64) {
    let machine = Machine::paper(shape);
    let report = simulate(
        &id.program(&machine).program,
        &machine,
        &SystemParams::paper_2007(),
    )
    .expect("paper-scale programs fit their machines");
    (report.cycles, report.gops(1.0))
}

fn harmonic_mean(values: &[f64]) -> f64 {
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Figure 15: application speedups over the `C=8 N=5` baseline, with GOPS
/// annotations, across cluster counts at `N = 5` and at the `N = 10`
/// configurations the paper highlights.
pub fn fig15() -> Report {
    let mut r = Report::new(
        "fig15",
        "Application Performance (speedup over C=8 N=5; GOPS in parentheses)",
    )
    .headers([
        "app",
        "C=8",
        "C=16",
        "C=32",
        "C=64",
        "C=128",
        "C=128 N=2",
        "C=128 N=10",
        "C=128 N=14",
        "paper C128N10",
    ]);
    let mut big_speedups = Vec::new();
    for id in AppId::ALL {
        let (base_cycles, base_gops) = cycles(id, Shape::new(8, 5));
        let mut row = vec![id.name().to_string()];
        for &c in FIG14_CS.iter() {
            let (cyc, gops) = cycles(id, Shape::new(c, 5));
            let speedup = base_cycles as f64 / cyc as f64;
            row.push(format!("{speedup:.1} ({gops:.0})"));
        }
        for n in [2u32, 10, 14] {
            let (cyc, gops) = cycles(id, Shape::new(128, n));
            let speedup = base_cycles as f64 / cyc as f64;
            if n == 10 {
                big_speedups.push(speedup);
            }
            row.push(format!("{speedup:.1} ({gops:.0})"));
        }
        let (pb, pg, px) = id.paper_fig15();
        row.push(format!("{px:.1} ({pb:.0}->{pg:.0})"));
        r.row(row);
        let _ = base_gops;
    }
    let mut hm_row = vec!["Harmonic Mean".to_string()];
    hm_row.extend(std::iter::repeat_n(String::new(), 6));
    hm_row.push(format!("{:.1}", harmonic_mean(&big_speedups)));
    hm_row.push(String::new());
    hm_row.push("10.4".to_string());
    r.row(hm_row);
    r.note("paper: RENDER/DEPTH/CONV scale well; QRD and FFT1K poorly beyond C=32; FFT4K beats FFT1K at scale");
    r
}

/// The abstract's headline claims vs this reproduction.
pub fn headline() -> Report {
    let model = stream_vlsi::CostModel::paper();
    let base = model.evaluate(Shape::BASELINE);
    let big = model.evaluate(Shape::HEADLINE_640);
    let area = big.area.per_alu() / base.area.per_alu() - 1.0;
    let energy = big.energy.per_alu_op() / base.energy.per_alu_op() - 1.0;

    // Kernel harmonic-mean speedups.
    let kernel_speedup = |shape: Shape| -> f64 {
        let vals: Vec<f64> = KernelId::ALL
            .iter()
            .map(|&id| {
                let m0 = Machine::baseline();
                let m1 = Machine::paper(shape);
                let k0 = CompiledKernel::compile_default(&id.build(&m0), &m0).unwrap();
                let k1 = CompiledKernel::compile_default(&id.build(&m1), &m1).unwrap();
                k1.elements_per_cycle() / k0.elements_per_cycle()
            })
            .collect();
        harmonic_mean(&vals)
    };
    let k640 = kernel_speedup(Shape::HEADLINE_640);
    let k1280 = kernel_speedup(Shape::HEADLINE_1280);

    // Application harmonic-mean speedups.
    let app_speedup = |shape: Shape| -> f64 {
        let vals: Vec<f64> = AppId::ALL
            .iter()
            .map(|&id| {
                let (b, _) = cycles(id, Shape::BASELINE);
                let (x, _) = cycles(id, shape);
                b as f64 / x as f64
            })
            .collect();
        harmonic_mean(&vals)
    };
    let a640 = app_speedup(Shape::HEADLINE_640);
    let a1280 = app_speedup(Shape::HEADLINE_1280);

    // Sustained kernel GOPS on the 640-ALU machine.
    let m640 = Machine::paper(Shape::HEADLINE_640);
    let gops640: f64 = KernelId::ALL
        .iter()
        .map(|&id| {
            CompiledKernel::compile_default(&id.build(&m640), &m640)
                .unwrap()
                .alu_ops_per_cycle()
        })
        .fold(0.0f64, f64::max);

    let mut r = Report::new("headline", "Abstract claims vs reproduction")
        .headers(["claim", "paper", "measured"]);
    r.row([
        "640-ALU area per ALU vs 40-ALU".to_string(),
        "+2%".to_string(),
        format!("{:+.1}%", area * 100.0),
    ]);
    r.row([
        "640-ALU energy per ALU op vs 40-ALU".to_string(),
        "+7%".to_string(),
        format!("{:+.1}%", energy * 100.0),
    ]);
    r.row([
        "640-ALU kernel speedup (HM)".to_string(),
        "15.3x".to_string(),
        format!("{k640:.1}x"),
    ]);
    r.row([
        "640-ALU application speedup (HM)".to_string(),
        "8.0x".to_string(),
        format!("{a640:.1}x"),
    ]);
    r.row([
        "1280-ALU kernel speedup (HM)".to_string(),
        "27.9x".to_string(),
        format!("{k1280:.1}x"),
    ]);
    r.row([
        "1280-ALU application speedup (HM)".to_string(),
        "10.0x".to_string(),
        format!("{a1280:.1}x"),
    ]);
    r.row([
        "640-ALU peak kernel GOPS (best kernel)".to_string(),
        ">300".to_string(),
        format!("{gops640:.0}"),
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_reports_all_apps() {
        let r = fig15();
        assert_eq!(r.rows.len(), 7); // 6 apps + harmonic mean
                                     // RENDER (well-scaling) speedup at C=128 N=10 should exceed QRD's.
        let find = |name: &str| -> f64 {
            let row = r.rows.iter().find(|row| row[0] == name).unwrap();
            row[7].split_whitespace().next().unwrap().parse().unwrap()
        };
        assert!(find("RENDER") > find("QRD"));
        assert!(find("FFT4K") > find("FFT1K"));
    }

    #[test]
    fn headline_directionally_matches() {
        let r = headline();
        let measured = |i: usize| -> f64 {
            r.rows[i][2]
                .trim_end_matches(['%', 'x'])
                .trim_start_matches('+')
                .parse()
                .unwrap()
        };
        assert!(measured(0) < 8.0); // area overhead small
        assert!(measured(1) < 13.0); // energy overhead small
        assert!(measured(2) > 10.0); // 640-ALU kernel speedup double digit
        assert!(measured(4) > measured(2)); // 1280 beats 640 on kernels
    }
}
