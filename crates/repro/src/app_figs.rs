//! Section 5.3 reproductions: Figure 15 (application performance) and the
//! abstract's headline claims.

use crate::kernel_figs::FIG14_CS;
use crate::sweep::Ctx;
use crate::{ExperimentId, Report};
use stream_apps::AppId;
use stream_kernels::KernelId;
use stream_machine::{Machine, SystemParams};
use stream_sim::simulate;
use stream_vlsi::Shape;

fn cycles(id: AppId, shape: Shape) -> (u64, f64) {
    let machine = Machine::paper(shape);
    let report = simulate(
        &id.program(&machine).program,
        &machine,
        &SystemParams::paper_2007(),
    )
    .expect("paper-scale programs fit their machines");
    (report.cycles, report.gops(1.0))
}

fn harmonic_mean(values: &[f64]) -> f64 {
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Figure 15: application speedups over the `C=8 N=5` baseline, with GOPS
/// annotations, across cluster counts at `N = 5` and at the `N = 10`
/// configurations the paper highlights.
pub(crate) fn fig15_impl(ctx: &Ctx) -> Report {
    let mut r = Report::new(
        "fig15",
        "Application Performance (speedup over C=8 N=5; GOPS in parentheses)",
    )
    .with_headers([
        "app",
        "C=8",
        "C=16",
        "C=32",
        "C=64",
        "C=128",
        "C=128 N=2",
        "C=128 N=10",
        "C=128 N=14",
        "paper C128N10",
    ]);
    // One sweep job per (app, shape) cell; the C=8 column doubles as the
    // speedup baseline.
    let shapes: Vec<Shape> = FIG14_CS
        .iter()
        .map(|&c| Shape::new(c, 5))
        .chain([2u32, 10, 14].map(|n| Shape::new(128, n)))
        .collect();
    let cells: Vec<(AppId, Shape)> = AppId::ALL
        .iter()
        .flat_map(|&id| shapes.iter().map(move |&s| (id, s)))
        .collect();
    let sims = ctx.map(cells, |(id, shape)| cycles(id, shape));
    let mut big_speedups = Vec::new();
    for (ai, id) in AppId::ALL.iter().enumerate() {
        let (base_cycles, _base_gops) = sims[ai * shapes.len()];
        let mut row = vec![id.name().to_string()];
        for (si, shape) in shapes.iter().enumerate() {
            let (cyc, gops) = sims[ai * shapes.len() + si];
            let speedup = base_cycles as f64 / cyc as f64;
            if *shape == Shape::new(128, 10) {
                big_speedups.push(speedup);
            }
            row.push(format!("{speedup:.1} ({gops:.0})"));
        }
        let (pb, pg, px) = id.paper_fig15();
        row.push(format!("{px:.1} ({pb:.0}->{pg:.0})"));
        r.row(row);
    }
    let mut hm_row = vec!["Harmonic Mean".to_string()];
    hm_row.extend(std::iter::repeat_n(String::new(), 6));
    hm_row.push(format!("{:.1}", harmonic_mean(&big_speedups)));
    hm_row.push(String::new());
    hm_row.push("10.4".to_string());
    r.row(hm_row);
    r.note("paper: RENDER/DEPTH/CONV scale well; QRD and FFT1K poorly beyond C=32; FFT4K beats FFT1K at scale");
    r
}

/// Figure 15, on an engine sized to the host.
pub fn fig15() -> Report {
    crate::run(ExperimentId::Fig15)
}

/// The abstract's headline claims vs this reproduction.
pub(crate) fn headline_impl(ctx: &Ctx) -> Report {
    let model = stream_vlsi::CostModel::paper();
    let base = model.evaluate(Shape::BASELINE);
    let big = model.evaluate(Shape::HEADLINE_640);
    let area = big.area.per_alu() / base.area.per_alu() - 1.0;
    let energy = big.energy.per_alu_op() / base.energy.per_alu_op() - 1.0;

    let shapes = [Shape::BASELINE, Shape::HEADLINE_640, Shape::HEADLINE_1280];

    // One job per (kernel, shape): machine-wide throughput and ALU
    // ops/cycle, compiled through the shared cache.
    let kernel_cells: Vec<(KernelId, Shape)> = KernelId::ALL
        .iter()
        .flat_map(|&id| shapes.iter().map(move |&s| (id, s)))
        .collect();
    let kernel_vals = ctx.map(kernel_cells, |(id, shape)| {
        let m = Machine::paper(shape);
        let k = ctx
            .scope
            .compile_default(&id.build(&m), &m)
            .expect("suite kernels schedule on all paper machines");
        (k.elements_per_cycle(), k.alu_ops_per_cycle())
    });
    let kernel_at = |ki: usize, si: usize| kernel_vals[ki * shapes.len() + si];
    let kernel_speedup = |si: usize| -> f64 {
        let vals: Vec<f64> = (0..KernelId::ALL.len())
            .map(|ki| kernel_at(ki, si).0 / kernel_at(ki, 0).0)
            .collect();
        harmonic_mean(&vals)
    };
    let k640 = kernel_speedup(1);
    let k1280 = kernel_speedup(2);

    // One job per (app, shape): simulated cycle count.
    let app_cells: Vec<(AppId, Shape)> = AppId::ALL
        .iter()
        .flat_map(|&id| shapes.iter().map(move |&s| (id, s)))
        .collect();
    let app_cycles = ctx.map(app_cells, |(id, shape)| cycles(id, shape).0);
    let app_speedup = |si: usize| -> f64 {
        let vals: Vec<f64> = (0..AppId::ALL.len())
            .map(|ai| {
                app_cycles[ai * shapes.len()] as f64 / app_cycles[ai * shapes.len() + si] as f64
            })
            .collect();
        harmonic_mean(&vals)
    };
    let a640 = app_speedup(1);
    let a1280 = app_speedup(2);

    // Sustained kernel GOPS on the 640-ALU machine (best kernel).
    let gops640: f64 = (0..KernelId::ALL.len())
        .map(|ki| kernel_at(ki, 1).1)
        .fold(0.0f64, f64::max);

    let mut r = Report::new("headline", "Abstract claims vs reproduction")
        .with_headers(["claim", "paper", "measured"]);
    r.row([
        "640-ALU area per ALU vs 40-ALU".to_string(),
        "+2%".to_string(),
        format!("{:+.1}%", area * 100.0),
    ]);
    r.row([
        "640-ALU energy per ALU op vs 40-ALU".to_string(),
        "+7%".to_string(),
        format!("{:+.1}%", energy * 100.0),
    ]);
    r.row([
        "640-ALU kernel speedup (HM)".to_string(),
        "15.3x".to_string(),
        format!("{k640:.1}x"),
    ]);
    r.row([
        "640-ALU application speedup (HM)".to_string(),
        "8.0x".to_string(),
        format!("{a640:.1}x"),
    ]);
    r.row([
        "1280-ALU kernel speedup (HM)".to_string(),
        "27.9x".to_string(),
        format!("{k1280:.1}x"),
    ]);
    r.row([
        "1280-ALU application speedup (HM)".to_string(),
        "10.0x".to_string(),
        format!("{a1280:.1}x"),
    ]);
    r.row([
        "640-ALU peak kernel GOPS (best kernel)".to_string(),
        ">300".to_string(),
        format!("{gops640:.0}"),
    ]);
    r
}

/// The headline report, on an engine sized to the host.
pub fn headline() -> Report {
    crate::run(ExperimentId::Headline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_reports_all_apps() {
        let r = fig15();
        assert_eq!(r.rows.len(), 7); // 6 apps + harmonic mean
                                     // RENDER (well-scaling) speedup at C=128 N=10 should exceed QRD's.
        let find = |name: &str| -> f64 {
            let row = r.rows.iter().find(|row| row[0] == name).unwrap();
            row[7].split_whitespace().next().unwrap().parse().unwrap()
        };
        assert!(find("RENDER") > find("QRD"));
        assert!(find("FFT4K") > find("FFT1K"));
    }

    #[test]
    fn headline_directionally_matches() {
        let r = headline();
        let measured = |i: usize| -> f64 {
            r.rows[i][2]
                .trim_end_matches(['%', 'x'])
                .trim_start_matches('+')
                .parse()
                .unwrap()
        };
        assert!(measured(0) < 8.0); // area overhead small
        assert!(measured(1) < 13.0); // energy overhead small
        assert!(measured(2) > 10.0); // 640-ALU kernel speedup double digit
        assert!(measured(4) > measured(2)); // 1280 beats 640 on kernels
    }
}
