//! Section 3/4 reproductions: Tables 1 and 3, Figures 6–12 (the VLSI cost
//! model results).

use crate::Report;
use stream_vlsi::{
    calibration_anchors, combined_sweep, intercluster_sweep, intracluster_sweep, CostKind,
    CostModel, Shape, TechParams, INTERCLUSTER_CS, INTRACLUSTER_NS,
};

fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Table 1: the model parameters (echoed from the implementation so any
/// drift from the paper is visible).
pub fn table1() -> Report {
    let p = TechParams::paper();
    let mut r = Report::new("table1", "Summary of Parameters").with_headers([
        "param",
        "value",
        "description",
    ]);
    let rows: Vec<(&str, String, &str)> = vec![
        (
            "A_SRAM",
            f(p.sram_area_per_bit),
            "area of 1 bit of SRAM (grids)",
        ),
        ("A_SB", f(p.sb_area_per_word), "area per SB width (grids)"),
        ("w_ALU", f(p.alu_width), "ALU datapath width (tracks)"),
        ("w_LRF", f(p.lrf_width), "width of 2 LRFs (tracks)"),
        ("w_SP", f(p.sp_width), "scratchpad datapath width (tracks)"),
        ("h", f(p.datapath_height), "datapath height (tracks)"),
        ("v_0", f(p.wire_velocity), "wire velocity (tracks/FO4)"),
        ("t_cyc", f(p.fo4_per_cycle), "FO4s per clock"),
        ("t_mux", f(p.mux_delay_fo4), "2:1 mux delay (FO4)"),
        (
            "E_w",
            f(p.wire_energy_per_track),
            "wire energy per track (unit)",
        ),
        (
            "E_ALU",
            format!("{:.1e}", p.alu_energy),
            "ALU op energy (E_w)",
        ),
        (
            "E_SRAM",
            f(p.sram_energy_per_bit),
            "SRAM energy per bit (E_w)",
        ),
        (
            "E_SB",
            f(p.sb_energy_per_bit),
            "SB access energy per bit (E_w)",
        ),
        (
            "E_LRF",
            format!("{:.1e}", p.lrf_energy),
            "LRF access energy (E_w)",
        ),
        (
            "E_SP",
            format!("{:.1e}", p.sp_energy),
            "SP access energy (E_w)",
        ),
        (
            "T",
            format!("{}", p.memory_latency_cycles),
            "memory latency (cycles)",
        ),
        ("b", format!("{}", p.data_width_bits), "data width (bits)"),
        (
            "G_SRF",
            f(p.srf_width_per_alu),
            "SRF bank width per N (words)",
        ),
        ("G_SB", f(p.sb_accesses_per_op), "SB accesses per ALU op"),
        ("G_COMM", f(p.comm_units_per_alu), "COMM units per N"),
        ("G_SP", f(p.sp_units_per_alu), "SP units per N"),
        ("I_0", f(p.vliw_base_bits), "base VLIW width (bits)"),
        ("I_N", f(p.vliw_bits_per_fu), "VLIW bits per FU"),
        ("L_C", f(p.base_cluster_sbs), "initial cluster SBs"),
        ("L_O", f(p.other_sbs), "non-cluster SBs"),
        ("L_N", f(p.extra_sbs_per_alu), "extra SBs per N"),
        (
            "r_m",
            f(p.srf_words_per_alu_latency),
            "SRF words/ALU/latency-cycle",
        ),
        (
            "r_uc",
            f(p.microcode_instructions),
            "microcode instructions",
        ),
    ];
    for (name, value, desc) in rows {
        r.row([name.to_string(), value, desc.to_string()]);
    }
    r.note("values are the published Table 1 constants");
    r
}

/// Table 3 (evaluated): the cost-model components at representative shapes.
pub fn table3() -> Report {
    let model = CostModel::paper();
    let mut r = Report::new(
        "table3",
        "Stream Processor VLSI Costs (model evaluated; areas in Mgrids, energies in ME_w/cycle)",
    )
    .with_headers([
        "shape", "A_SRF*C", "A_UC", "A_CLST*C", "A_COMM", "E_SRF*C", "E_UC", "E_CLST*C", "E_inter",
        "t_intra", "t_inter",
    ]);
    for shape in [
        Shape::new(8, 5),
        Shape::new(8, 16),
        Shape::new(32, 5),
        Shape::new(128, 5),
        Shape::new(128, 10),
    ] {
        let c = model.evaluate(shape);
        let m = 1.0e6;
        r.row([
            shape.to_string(),
            f(c.area.srf_total() / m),
            f(c.area.microcontroller / m),
            f(c.area.clusters_total() / m),
            f(c.area.intercluster_switch / m),
            f(shape.c() * c.energy.srf_bank / m),
            f(c.energy.microcontroller / m),
            f(shape.c() * c.energy.cluster / m),
            f(c.energy.intercluster / m),
            format!("{:.1}", c.delay.intracluster_fo4),
            format!("{:.1}", c.delay.intercluster_fo4),
        ]);
    }
    r.note("formulae follow Table 3; reconstruction choices documented in DESIGN.md");
    r
}

/// The calibration anchors: every Section 4 prose claim vs the model.
pub fn calibration() -> Report {
    let model = CostModel::paper();
    let mut r = Report::new("calibration", "Section 4 prose anchors vs model")
        .with_headers(["anchor", "paper", "measured", "band", "pass"]);
    for a in calibration_anchors(&model) {
        r.row([
            a.id.to_string(),
            format!("{:.3}", a.paper_value),
            format!("{:.3}", a.measured),
            format!("[{:.2},{:.2}]", a.band.0, a.band.1),
            if a.passes() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    r
}

fn sweep_report(
    id: &'static str,
    title: &str,
    sweep: &stream_vlsi::Sweep,
    label: impl Fn(Shape) -> String,
) -> Report {
    let mut r = Report::new(id, title).with_headers([
        "config",
        "SRF",
        "microcontroller",
        "clusters",
        "intercluster switch",
        "total",
    ]);
    for p in &sweep.points {
        let c = p.components;
        r.row([
            label(p.shape),
            f(c.srf),
            f(c.microcontroller),
            f(c.clusters),
            f(c.intercluster_switch),
            f(p.total()),
        ]);
    }
    r
}

/// Figure 6: area per ALU under intracluster scaling (C = 8, normalized to
/// N = 5).
pub fn fig6() -> Report {
    let s = intracluster_sweep(&CostModel::paper(), CostKind::Area, 8);
    let mut r = sweep_report(
        "fig6",
        "Area of Intracluster Scaling (per ALU, C=8, normalized to N=5)",
        &s,
        |shape| format!("N={}", shape.alus_per_cluster),
    );
    r.note("paper: minimum at N=5; within 16% of minimum up to N=16");
    r
}

/// Figure 7: energy per ALU op under intracluster scaling.
pub fn fig7() -> Report {
    let s = intracluster_sweep(&CostModel::paper(), CostKind::Energy, 8);
    let mut r = sweep_report(
        "fig7",
        "Energy of Intracluster Scaling (per ALU op, C=8, normalized to N=5)",
        &s,
        |shape| format!("N={}", shape.alus_per_cluster),
    );
    r.note("paper: grows to 1.23x of minimum by N=16");
    r
}

/// Figure 8: switch delays under intracluster scaling.
pub fn fig8() -> Report {
    let model = CostModel::paper();
    let mut r = Report::new("fig8", "Delay of Intracluster Scaling (FO4, C=8)").with_headers([
        "config",
        "intracluster",
        "intercluster",
        "extra intra stages",
        "COMM cycles",
    ]);
    for &n in INTRACLUSTER_NS.iter() {
        let d = model.evaluate(Shape::new(8, n)).delay;
        r.row([
            format!("N={n}"),
            format!("{:.1}", d.intracluster_fo4),
            format!("{:.1}", d.intercluster_fo4),
            format!("{}", d.extra_intracluster_stages()),
            format!("{}", d.intercluster_cycles()),
        ]);
    }
    r.note("paper: half a 45-FO4 cycle covers intracluster delay up to ~N=10; N=14 needs +1 stage");
    r
}

/// Figure 9: area per ALU under intercluster scaling (N = 5, normalized to
/// C = 8).
pub fn fig9() -> Report {
    let s = intercluster_sweep(&CostModel::paper(), CostKind::Area, 5);
    let mut r = sweep_report(
        "fig9",
        "Area of Intercluster Scaling (per ALU, N=5, normalized to C=8)",
        &s,
        |shape| format!("C={}", shape.clusters),
    );
    r.note("paper: C=32 is 3% better than C=8; C=128 is 2% worse");
    r
}

/// Figure 10: energy per ALU op under intercluster scaling.
pub fn fig10() -> Report {
    let s = intercluster_sweep(&CostModel::paper(), CostKind::Energy, 5);
    let mut r = sweep_report(
        "fig10",
        "Energy of Intercluster Scaling (per ALU op, N=5, normalized to C=8)",
        &s,
        |shape| format!("C={}", shape.clusters),
    );
    r.note("paper: C=128 dissipates 7% more energy per ALU op than C=8");
    r
}

/// Figure 11: switch delays under intercluster scaling.
pub fn fig11() -> Report {
    let model = CostModel::paper();
    let mut r = Report::new("fig11", "Delay of Intercluster Scaling (FO4, N=5)").with_headers([
        "config",
        "intracluster",
        "intercluster",
        "COMM cycles",
    ]);
    for &c in INTERCLUSTER_CS.iter() {
        let d = model.evaluate(Shape::new(c, 5)).delay;
        r.row([
            format!("C={c}"),
            format!("{:.1}", d.intracluster_fo4),
            format!("{:.1}", d.intercluster_fo4),
            format!("{}", d.intercluster_cycles()),
        ]);
    }
    r.note("paper: intracluster delay constant; intercluster delay fully pipelined");
    r
}

/// Figure 12: area per ALU under combined scaling (normalized to C=32 N=5).
pub fn fig12() -> Report {
    let sweeps = combined_sweep(&CostModel::paper(), CostKind::Area, &[2, 5, 16]);
    let mut r = Report::new(
        "fig12",
        "Area of Combined Scaling (per ALU, normalized to C=32 N=5)",
    )
    .with_headers(["total ALUs", "N=2", "N=5", "N=16"]);
    for (i, &c) in INTERCLUSTER_CS.iter().enumerate() {
        r.row([
            format!("C={c}"),
            f(sweeps[0].points[i].total()),
            f(sweeps[1].points[i].total()),
            f(sweeps[2].points[i].total()),
        ]);
    }
    r.note("paper: N=5 then intercluster scaling is the most efficient path; N=5->10 costs only 5-11% area");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cost_report_renders() {
        for r in [
            table1(),
            table3(),
            calibration(),
            fig6(),
            fig7(),
            fig8(),
            fig9(),
            fig10(),
            fig11(),
            fig12(),
        ] {
            let s = r.to_string();
            assert!(s.len() > 100, "{} too short", r.id);
            assert!(!r.rows.is_empty(), "{} has no rows", r.id);
        }
    }

    #[test]
    fn calibration_report_all_pass() {
        let r = calibration();
        assert!(r.rows.iter().all(|row| row.last().unwrap() == "yes"));
    }

    #[test]
    fn fig6_minimum_is_n5() {
        let r = fig6();
        let min = r
            .rows
            .iter()
            .min_by(|a, b| {
                let x: f64 = a.last().unwrap().parse().unwrap();
                let y: f64 = b.last().unwrap().parse().unwrap();
                x.total_cmp(&y)
            })
            .unwrap();
        assert_eq!(min[0], "N=5");
    }

    #[test]
    fn fig9_matches_paper_direction() {
        let r = fig9();
        let total = |label: &str| -> f64 {
            r.rows
                .iter()
                .find(|row| row[0] == label)
                .unwrap()
                .last()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(total("C=32") < 1.0);
        assert!(total("C=128") > 1.0 && total("C=128") < 1.08);
    }
}
