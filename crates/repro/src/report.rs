//! Report structures: every experiment renders to one aligned text table.

use std::fmt;

/// One regenerated table or figure.
///
/// `#[non_exhaustive]`: construct with [`Report::new`] and read through the
/// accessors, so fields can be added without breaking callers. The stable
/// wire form is [`Report::to_json`] (schema `stream-scaling.report.v1`,
/// documented in `docs/serve_api.md`) — the same rendering the
/// `stream-serve` daemon returns.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Report {
    /// Paper artifact id, e.g. `"fig6"` or `"table5"`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: paper anchors, deviations, substitutions.
    pub notes: Vec<String>,
    /// Out-of-band performance lines (sweep wall-clock, thread counts).
    /// Never rendered by `Display` — their values vary run to run, and the
    /// rendered report is guaranteed identical across worker counts. The
    /// `repro` binary prints them to stderr.
    pub perf: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Self {
            id,
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
            perf: Vec::new(),
        }
    }

    /// Sets the headers (builder-style).
    pub fn with_headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    pub fn row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Paper artifact id, e.g. `"fig6"` or `"table5"`.
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// Human title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows (already formatted).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Free-form notes: paper anchors, deviations, substitutions.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Out-of-band performance lines; see the field doc.
    pub fn perf_lines(&self) -> &[String] {
        &self.perf
    }

    /// The report's stable serialized form — schema
    /// `stream-scaling.report.v1`, the payload the `stream-serve` daemon
    /// returns. Deterministic: key order is fixed, `perf` lines (which vary
    /// run to run) are excluded, and the same report always renders to the
    /// same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"stream-scaling.report.v1\"");
        out.push_str(",\"id\":");
        json_string(&mut out, self.id);
        out.push_str(",\"title\":");
        json_string(&mut out, &self.title);
        out.push_str(",\"headers\":");
        json_strings(&mut out, &self.headers);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_strings(&mut out, row);
        }
        out.push_str("],\"notes\":");
        json_strings(&mut out, &self.notes);
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_strings(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, s);
    }
    out.push(']');
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        // Column widths.
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:>width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        if !self.headers.is_empty() {
            render(f, &self.headers)?;
        }
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_lines_are_not_rendered() {
        let mut r = Report::new("t", "demo");
        r.row(["x"]);
        r.perf.push("9 jobs on 4 thread(s)".to_string());
        assert!(!r.to_string().contains("jobs"));
    }

    #[test]
    fn renders_aligned_columns() {
        let mut r = Report::new("t", "demo").with_headers(["name", "value"]);
        r.row(["alpha", "1"]);
        r.row(["b", "12345"]);
        r.note("hello");
        let s = r.to_string();
        assert!(s.contains("== t — demo =="));
        assert!(s.contains("alpha"));
        assert!(s.contains("note: hello"));
        // Aligned: "value" column width fits 12345.
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn accessors_mirror_the_fields() {
        let mut r = Report::new("t", "demo").with_headers(["h"]);
        r.row(["v"]);
        r.note("n");
        r.perf.push("3 jobs".to_string());
        assert_eq!(r.id(), "t");
        assert_eq!(r.title(), "demo");
        assert_eq!(r.headers(), ["h".to_string()]);
        assert_eq!(r.rows(), [vec!["v".to_string()]]);
        assert_eq!(r.notes(), ["n".to_string()]);
        assert_eq!(r.perf_lines(), ["3 jobs".to_string()]);
    }

    #[test]
    fn json_form_is_stable_and_escaped() {
        let mut r = Report::new("t", "quo\"te — déjà\n").with_headers(["a", "b"]);
        r.row(["1", "2"]);
        r.note("back\\slash");
        r.perf.push("never serialized".to_string());
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"schema\":\"stream-scaling.report.v1\",\"id\":\"t\",\
             \"title\":\"quo\\\"te — déjà\\n\",\"headers\":[\"a\",\"b\"],\
             \"rows\":[[\"1\",\"2\"]],\"notes\":[\"back\\\\slash\"]}"
        );
        assert!(!json.contains("never serialized"));
    }
}
