//! Report structures: every experiment renders to one aligned text table.

use std::fmt;

/// One regenerated table or figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Paper artifact id, e.g. `"fig6"` or `"table5"`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: paper anchors, deviations, substitutions.
    pub notes: Vec<String>,
    /// Out-of-band performance lines (sweep wall-clock, thread counts).
    /// Never rendered by `Display` — their values vary run to run, and the
    /// rendered report is guaranteed identical across worker counts. The
    /// `repro` binary prints them to stderr.
    pub perf: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Self {
            id,
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
            perf: Vec::new(),
        }
    }

    /// Sets the headers.
    pub fn headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    pub fn row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        // Column widths.
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:>width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        if !self.headers.is_empty() {
            render(f, &self.headers)?;
        }
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_lines_are_not_rendered() {
        let mut r = Report::new("t", "demo");
        r.row(["x"]);
        r.perf.push("9 jobs on 4 thread(s)".to_string());
        assert!(!r.to_string().contains("jobs"));
    }

    #[test]
    fn renders_aligned_columns() {
        let mut r = Report::new("t", "demo").headers(["name", "value"]);
        r.row(["alpha", "1"]);
        r.row(["b", "12345"]);
        r.note("hello");
        let s = r.to_string();
        assert!(s.contains("== t — demo =="));
        assert!(s.contains("alpha"));
        assert!(s.contains("note: hello"));
        // Aligned: "value" column width fits 12345.
        assert!(s.lines().count() >= 4);
    }
}
