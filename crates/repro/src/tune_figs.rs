//! The `tune` extension experiment: per-application auto-tuning
//! (`stream-tune`) at two design points, reporting tuned-vs-default
//! speedups and the winning configuration.
//!
//! Output discipline: rows contain only disk-independent values (the
//! tuner is deterministic, and a rehydrated winner equals the searched
//! one), so a warm `--cache-dir` rerun renders byte-identically to a cold
//! run. Search-effort counters (candidates evaluated, pruned, scheduler
//! compiles) differ between cold and warm runs and therefore go to
//! [`Report::perf`], which `Display` never renders.

use crate::sweep::Ctx;
use crate::{ExperimentId, Report};
use stream_apps::AppId;
use stream_machine::{Machine, SystemParams};
use stream_tune::{tune_app, Tuned};
use stream_vlsi::Shape;

/// The design points tuned: the paper's baseline and a mid-size machine
/// where strip batching and unroll capping have more room to pay off.
fn tune_shapes() -> [Shape; 2] {
    [Shape::new(8, 5), Shape::new(64, 8)]
}

pub(crate) fn tune_impl(ctx: &Ctx) -> Report {
    let mut r = Report::new(
        "tune",
        "Auto-tuned vs default configuration (stream-tune, per app)",
    )
    .with_headers([
        "app",
        "shape",
        "default cyc",
        "tuned cyc",
        "speedup",
        "winner",
    ]);

    let cells: Vec<(AppId, Shape)> = AppId::ALL
        .iter()
        .flat_map(|&id| tune_shapes().into_iter().map(move |s| (id, s)))
        .collect();
    let tuned: Vec<Tuned> = ctx.map(cells.clone(), |(id, shape)| {
        tune_app(id, &Machine::paper(shape), &SystemParams::paper_2007())
    });

    let (mut evaluated, mut pruned, mut compiles, mut rehydrated) = (0u64, 0u64, 0u64, 0u64);
    for ((id, shape), t) in cells.iter().zip(&tuned) {
        r.row([
            id.name().to_string(),
            format!("C={} N={}", shape.clusters, shape.alus_per_cluster),
            t.default_cycles.to_string(),
            t.tuned_cycles.to_string(),
            format!("{:.3}x", t.speedup()),
            t.candidate.describe(),
        ]);
        evaluated += t.evaluated;
        pruned += t.pruned;
        compiles += t.sched_compiles;
        rehydrated += u64::from(t.from_disk);
    }

    r.note("objective: analytic simulated cycles; default config always evaluated first, so speedup >= 1.0 by construction");
    r.note("winner axes: scheduler unroll-factor set, strips batched per kernel call, tape tier, native-backend policy");
    r.perf.push(format!(
        "search: {evaluated} candidates evaluated, {pruned} pruned, {compiles} scheduler compiles, {rehydrated} rehydrated over {} cells",
        cells.len()
    ));
    r
}

/// The tune experiment, on an engine sized to the host.
pub fn tune() -> Report {
    crate::run(ExperimentId::Tune)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_reports_every_app_at_every_shape() {
        let r = tune();
        assert_eq!(r.rows.len(), AppId::ALL.len() * tune_shapes().len());
        let mut best = 1.0f64;
        for row in &r.rows {
            let speedup: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(speedup >= 1.0, "{}: tuned slower than default", row[0]);
            best = best.max(speedup);
        }
        // The search space is real: something must actually improve.
        assert!(best > 1.01, "no app improved (best {best})");
    }

    #[test]
    fn tune_report_is_byte_identical_across_worker_counts() {
        let serial = crate::run_with(ExperimentId::Tune, &stream_grid::Engine::new(1)).to_string();
        let parallel =
            crate::run_with(ExperimentId::Tune, &stream_grid::Engine::new(4)).to_string();
        assert_eq!(serial, parallel, "tune diverges across worker counts");
    }
}
