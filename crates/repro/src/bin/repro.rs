//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                      # every experiment, paper order
//! repro fig13 table5             # a subset
//! repro --jobs 4 all             # sweep on 4 worker threads
//! repro --trace out.json fig13   # also write a Chrome trace of the run
//! repro list                     # list experiment ids
//! ```
//!
//! `--jobs N` (or `-j N`) sets the worker-thread count; the default is the
//! host's available parallelism and `--jobs 1` is strictly serial.
//! `--trace <path>` enables `stream-trace` for the run and writes the
//! collected spans and counters as Chrome trace-event JSON (loadable in
//! `chrome://tracing` or Perfetto), plus a text summary on stderr. Stdout
//! is byte-identical for every worker count, traced or not; per-experiment
//! timings go to stderr.

use std::io::Write as _;
use std::process::ExitCode;
use stream_grid::Engine;
use stream_repro::ExperimentId;

fn usage() -> ExitCode {
    eprintln!("usage: repro [--jobs N] [--trace FILE] <all | list | experiment...>");
    eprintln!("experiments: {}", stream_repro::EXPERIMENTS.join(" "));
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut jobs: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    return usage();
                };
                jobs = Some(n);
            }
            other if other.starts_with("--jobs=") => {
                let Ok(n) = other["--jobs=".len()..].parse() else {
                    eprintln!("--jobs needs a positive integer");
                    return usage();
                };
                jobs = Some(n);
            }
            "--trace" => {
                let Some(path) = args.next() else {
                    eprintln!("--trace needs an output path");
                    return usage();
                };
                trace_path = Some(path);
            }
            other if other.starts_with("--trace=") => {
                trace_path = Some(other["--trace=".len()..].to_string());
            }
            "help" | "--help" | "-h" => return usage(),
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        return usage();
    }
    if names[0] == "list" {
        for id in ExperimentId::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<ExperimentId> = if names[0] == "all" {
        ExperimentId::ALL.to_vec()
    } else {
        let mut ids = Vec::with_capacity(names.len());
        for name in &names {
            match name.parse() {
                Ok(id) => ids.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        ids
    };
    if trace_path.is_some() {
        stream_trace::enable();
    }
    // The tape's strip-parallel executor draws from the process-global
    // permit pool; size it to the same worker budget as the sweep engine
    // so `--jobs 1` keeps the whole run strictly serial.
    stream_pool::configure_global(jobs.unwrap_or_else(stream_pool::default_parallelism));
    let engine = match jobs {
        Some(n) => Engine::new(n),
        None => Engine::with_default_parallelism(),
    };
    for report in stream_repro::run_many(&ids, &engine) {
        println!("{report}");
        // All of an experiment's perf lines go out in one locked, flushed
        // write, so concurrent stderr writers can never interleave inside
        // an experiment's block.
        let mut block = String::new();
        for line in &report.perf {
            block.push_str("# ");
            block.push_str(report.id);
            block.push_str(": ");
            block.push_str(line);
            block.push('\n');
        }
        let stderr = std::io::stderr();
        let mut lock = stderr.lock();
        let _ = lock.write_all(block.as_bytes());
        let _ = lock.flush();
    }
    if let Some(path) = trace_path {
        stream_trace::disable();
        let events = stream_trace::take_events();
        let json = stream_trace::chrome_trace_json(&events);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprint!("{}", stream_trace::summary(&events));
        eprintln!("trace written to {path} ({} events)", events.len());
    }
    ExitCode::SUCCESS
}
