//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all            # every experiment, paper order
//! repro fig13 table5   # a subset
//! repro list           # list experiment ids
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro <all | list | experiment...>");
        eprintln!("experiments: {}", stream_repro::EXPERIMENTS.join(" "));
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for id in stream_repro::EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args[0] == "all" {
        stream_repro::EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !stream_repro::EXPERIMENTS.contains(id) {
            eprintln!("unknown experiment: {id}");
            eprintln!("known: {}", stream_repro::EXPERIMENTS.join(" "));
            return ExitCode::from(2);
        }
    }
    for id in ids {
        println!("{}", stream_repro::run(id));
    }
    ExitCode::SUCCESS
}
