//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                # every experiment, paper order
//! repro fig13 table5       # a subset
//! repro --jobs 4 all       # sweep on 4 worker threads
//! repro list               # list experiment ids
//! ```
//!
//! `--jobs N` (or `-j N`) sets the worker-thread count; the default is the
//! host's available parallelism and `--jobs 1` is strictly serial. Stdout
//! is byte-identical for every worker count; per-experiment timings go to
//! stderr.

use std::process::ExitCode;
use stream_grid::Engine;
use stream_repro::ExperimentId;

fn usage() -> ExitCode {
    eprintln!("usage: repro [--jobs N] <all | list | experiment...>");
    eprintln!("experiments: {}", stream_repro::EXPERIMENTS.join(" "));
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut jobs: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    return usage();
                };
                jobs = Some(n);
            }
            other if other.starts_with("--jobs=") => {
                let Ok(n) = other["--jobs=".len()..].parse() else {
                    eprintln!("--jobs needs a positive integer");
                    return usage();
                };
                jobs = Some(n);
            }
            "help" | "--help" | "-h" => return usage(),
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        return usage();
    }
    if names[0] == "list" {
        for id in ExperimentId::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<ExperimentId> = if names[0] == "all" {
        ExperimentId::ALL.to_vec()
    } else {
        let mut ids = Vec::with_capacity(names.len());
        for name in &names {
            match name.parse() {
                Ok(id) => ids.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        ids
    };
    let engine = match jobs {
        Some(n) => Engine::new(n),
        None => Engine::with_default_parallelism(),
    };
    for report in stream_repro::run_many(&ids, &engine) {
        println!("{report}");
        for line in &report.perf {
            eprintln!("# {}: {}", report.id, line);
        }
    }
    ExitCode::SUCCESS
}
