//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                      # every experiment, paper order
//! repro fig13 table5             # a subset
//! repro --jobs 4 all             # sweep on 4 worker threads
//! repro --trace out.json fig13   # also write a Chrome trace of the run
//! repro --metrics out.prom all   # dump the metric registry after the run
//! repro --cache-dir .cache all   # persist compiled schedules across runs
//! repro list                     # list experiment ids
//! ```
//!
//! `--jobs N` (or `-j N`) sets the worker-thread count; the default is the
//! host's available parallelism and `--jobs 1` is strictly serial.
//! `--trace <path>` enables `stream-trace` for the run and writes the
//! collected spans and counters as Chrome trace-event JSON (loadable in
//! `chrome://tracing` or Perfetto), plus a text summary on stderr.
//! `--metrics <path>` writes the full metric registry in Prometheus text
//! exposition format 0.0.4 after the run — the same bytes `stream-serve`
//! answers on `GET /metrics` (see `docs/metrics.md` for the catalogue).
//! `--cache-dir <dir>` (or the `STREAM_CACHE_DIR` environment variable)
//! attaches a persistent schedule cache: a second run against a populated
//! directory rehydrates every schedule instead of compiling (the stderr
//! `# cache:` line reports `compiles=0`). Stdout is byte-identical for
//! every worker count, traced or not, cache warm or cold; per-experiment
//! timings and cache statistics go to stderr.
//!
//! The binary is a thin shim: it parses argv into a
//! [`stream_repro::Query`] and prints what the query returns, so the CLI
//! can never drift from the library or the `stream-serve` daemon.

use std::io::Write as _;
use std::process::ExitCode;
use stream_repro::{ExperimentId, Query};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--jobs N] [--trace FILE] [--metrics FILE] [--cache-dir DIR] \
         <all | list | experiment...>"
    );
    eprintln!("experiments: {}", stream_repro::EXPERIMENTS.join(" "));
    ExitCode::from(2)
}

fn main() -> ExitCode {
    // Flight recorder: on by default (STREAM_FLIGHT_RECORDER=off disables;
    // STREAM_FLIGHT_DUMP=path arms the panic dump). Never touches stdout,
    // so reproduction output stays byte-identical either way.
    stream_trace::init_flight_from_env();
    let mut jobs: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut cache_dir: Option<String> = std::env::var("STREAM_CACHE_DIR").ok();
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    return usage();
                };
                jobs = Some(n);
            }
            other if other.starts_with("--jobs=") => {
                let Ok(n) = other["--jobs=".len()..].parse() else {
                    eprintln!("--jobs needs a positive integer");
                    return usage();
                };
                jobs = Some(n);
            }
            "--trace" => {
                let Some(path) = args.next() else {
                    eprintln!("--trace needs an output path");
                    return usage();
                };
                trace_path = Some(path);
            }
            other if other.starts_with("--trace=") => {
                trace_path = Some(other["--trace=".len()..].to_string());
            }
            "--metrics" => {
                let Some(path) = args.next() else {
                    eprintln!("--metrics needs an output path");
                    return usage();
                };
                metrics_path = Some(path);
            }
            other if other.starts_with("--metrics=") => {
                metrics_path = Some(other["--metrics=".len()..].to_string());
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("--cache-dir needs a directory path");
                    return usage();
                };
                cache_dir = Some(dir);
            }
            other if other.starts_with("--cache-dir=") => {
                cache_dir = Some(other["--cache-dir=".len()..].to_string());
            }
            "help" | "--help" | "-h" => return usage(),
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        return usage();
    }
    if names[0] == "list" {
        for id in ExperimentId::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let mut query = if names[0] == "all" {
        Query::all()
    } else {
        let mut ids = Vec::with_capacity(names.len());
        for name in &names {
            match name.parse::<ExperimentId>() {
                Ok(id) => ids.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        Query::new().experiments(ids)
    };
    if let Some(n) = jobs {
        query = query.jobs(n);
    }
    if trace_path.is_some() {
        stream_trace::enable();
    }
    if let Some(dir) = &cache_dir {
        if let Err(e) = stream_grid::attach_global_disk(std::path::Path::new(dir)) {
            eprintln!("failed to open schedule cache at {dir}: {e}");
            return ExitCode::FAILURE;
        }
        // The same root also hosts the native-backend artifact tier, so a
        // warm cache directory restarts with zero rustc invocations.
        if let Err(e) = stream_ir::attach_native_disk(std::path::Path::new(dir)) {
            eprintln!("failed to open native artifact cache at {dir}: {e}");
            return ExitCode::FAILURE;
        }
        // And the auto-tuner's results tier, so a warm directory replays
        // validated tuning winners with zero searches.
        if let Err(e) = stream_tune::attach_global_disk(std::path::Path::new(dir)) {
            eprintln!("failed to open tuning results cache at {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // The tape's strip-parallel executor draws from the process-global
    // permit pool; size it to the same worker budget as the sweep engine
    // so `--jobs 1` keeps the whole run strictly serial.
    stream_pool::configure_global(jobs.unwrap_or_else(stream_pool::default_parallelism));
    let engine = query.engine();
    for report in query.run_on(&engine) {
        println!("{report}");
        // All of an experiment's perf lines go out in one locked, flushed
        // write, so concurrent stderr writers can never interleave inside
        // an experiment's block.
        let mut block = String::new();
        for line in report.perf_lines() {
            block.push_str("# ");
            block.push_str(report.id());
            block.push_str(": ");
            block.push_str(line);
            block.push('\n');
        }
        let stderr = std::io::stderr();
        let mut lock = stderr.lock();
        let _ = lock.write_all(block.as_bytes());
        let _ = lock.flush();
    }
    if cache_dir.is_some() {
        // Warm-start accounting (stderr, never stdout): `compiles=0` on a
        // populated cache directory is the "zero schedule compiles" check
        // CI asserts.
        let s = stream_grid::global_cache().stats();
        let n = stream_ir::native_stats();
        eprintln!(
            "# cache: compiles={} disk_hits={} disk_misses={} \
             native_compiles={} native_disk_hits={} native_fallbacks={}",
            s.compiles, s.disk_hits, s.disk_misses, n.compiles, n.disk_hits, n.fallbacks
        );
        // `searches=0` on a warm directory is the zero-search restart
        // check CI asserts (rehydrated winners are re-validated, so
        // `rehydrated` counts successful replays).
        let t = stream_tune::stats();
        eprintln!(
            "# tune: searches={} rehydrated={} pruned={} candidates={} sched_compiles={}",
            t.searches, t.rehydrated, t.pruned, t.candidates, t.sched_compiles
        );
    }
    if let Some(path) = trace_path {
        stream_trace::disable();
        let events = stream_trace::take_events();
        let json = stream_trace::chrome_trace_json(&events);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprint!("{}", stream_trace::summary(&events));
        eprintln!("trace written to {path} ({} events)", events.len());
    }
    if let Some(path) = metrics_path {
        // The same bytes `stream-serve` answers on GET /metrics: sample the
        // point-in-time gauges, make sure the always-on families are
        // registered, then render the registry.
        stream_grid::sample_gauges();
        let _ = stream_ir::native_stats();
        let _ = stream_tune::stats();
        if let Err(e) = std::fs::write(&path, stream_trace::render_prometheus()) {
            eprintln!("failed to write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics written to {path}");
    }
    ExitCode::SUCCESS
}
