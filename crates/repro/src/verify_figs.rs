//! The `verify` experiment: sweep the full Figure 13 x Figure 14
//! configuration grid, run every compiled kernel schedule through the
//! independent verifier in `stream-verify`, and lint every kernel's IR.
//!
//! A clean run is the evidence that the scheduler's output is legal by an
//! implementation that shares none of its code — the paper's results rest
//! on these schedules being real.

use crate::kernel_figs::{FIG13_NS, FIG14_CS};
use crate::Report;
use stream_kernels::KernelId;
use stream_machine::Machine;
use stream_sched::{check_schedule, CompiledKernel};
use stream_verify::lint_kernel;
use stream_vlsi::Shape;

/// Verifies every suite kernel's schedule and IR across the full
/// `(C, N)` grid of Figures 13 and 14.
///
/// # Panics
///
/// Panics if any suite kernel fails to compile — the same precondition as
/// the figures themselves.
pub fn verify() -> Report {
    let mut r = Report::new(
        "verify",
        "Independent schedule verification across the (C, N) grid",
    )
    .headers([
        "kernel",
        "configs",
        "sched errors",
        "sched warnings",
        "lint errors",
        "lint warnings",
    ]);
    let mut total_errors = 0usize;
    for id in KernelId::ALL {
        let mut configs = 0usize;
        let mut sched_errors = 0usize;
        let mut sched_warnings = 0usize;
        let mut lint_errors = 0usize;
        let mut lint_warnings = 0usize;
        for &c in FIG14_CS.iter() {
            for &n in FIG13_NS.iter() {
                let machine = Machine::paper(Shape::new(c, n));
                let kernel = id.build(&machine);
                let lint = lint_kernel(&kernel);
                lint_errors += lint.error_count();
                lint_warnings += lint.warning_count();
                let compiled = CompiledKernel::compile_default(&kernel, &machine)
                    .expect("suite kernels schedule on all paper machines");
                let report = check_schedule(compiled.ddg(), compiled.schedule(), &machine);
                sched_errors += report.error_count();
                sched_warnings += report.warning_count();
                configs += 1;
            }
        }
        total_errors += sched_errors + lint_errors;
        r.row([
            id.name().to_string(),
            configs.to_string(),
            sched_errors.to_string(),
            sched_warnings.to_string(),
            lint_errors.to_string(),
            lint_warnings.to_string(),
        ]);
    }
    r.note(format!(
        "verifier re-derives slot usage, dependences, ResMII/RecMII, and register pressure; {total_errors} error(s) total"
    ));
    r.note("diagnostic codes are cataloged in docs/lint_codes.md");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_verifies_clean() {
        let r = verify();
        for row in &r.rows {
            assert_eq!(row[2], "0", "schedule errors for {}", row[0]);
            assert_eq!(row[4], "0", "lint errors for {}", row[0]);
        }
    }
}
