//! The `verify` experiment: sweep the full Figure 13 x Figure 14
//! configuration grid, run every compiled kernel schedule through the
//! independent verifier in `stream-verify`, lint every kernel's IR, and
//! translation-validate every kernel's execution tape under each tape
//! compiler configuration (`stream-tapecheck`).
//!
//! A clean run is the evidence that the scheduler's output is legal by an
//! implementation that shares none of its code — the paper's results rest
//! on these schedules being real — and that the tape compiler's fused,
//! batched, and planarized code is provably equivalent to the kernel IR it
//! was compiled from.

use crate::kernel_figs::{FIG13_NS, FIG14_CS};
use crate::sweep::Ctx;
use crate::{ExperimentId, Report};
use stream_ir::{Tape, TapeConfig};
use stream_kernels::KernelId;
use stream_machine::Machine;
use stream_sched::check_schedule;
use stream_tapecheck::validate_tape;
use stream_verify::lint_kernel;
use stream_vlsi::Shape;

/// The tape compiler configurations every kernel is validated under: the
/// current default (fused), the v1 baseline (unfused, unbatched), and the
/// planarized layout — the three codegen strategies `repro` measures.
fn tape_configs() -> [TapeConfig; 3] {
    [
        TapeConfig::default(),
        TapeConfig::v1_baseline(),
        TapeConfig {
            planar: true,
            ..TapeConfig::default()
        },
    ]
}

/// Verifies every suite kernel's schedule and IR across the full
/// `(C, N)` grid of Figures 13 and 14.
///
/// # Panics
///
/// Panics if any suite kernel fails to compile — the same precondition as
/// the figures themselves.
pub(crate) fn verify_impl(ctx: &Ctx) -> Report {
    let mut r = Report::new(
        "verify",
        "Independent schedule verification across the (C, N) grid",
    )
    .with_headers([
        "kernel",
        "configs",
        "sched errors",
        "sched warnings",
        "lint errors",
        "lint warnings",
        "tape errors",
        "tape warnings",
    ]);
    // One job per (kernel, C, N) config; schedules come from the shared
    // cache, so a `repro all` run verifies the very schedules the figures
    // measured rather than recompiling its own.
    let cells: Vec<(KernelId, u32, u32)> = KernelId::ALL
        .iter()
        .flat_map(|&id| {
            FIG14_CS
                .iter()
                .flat_map(move |&c| FIG13_NS.iter().map(move |&n| (id, c, n)))
        })
        .collect();
    let checks = ctx.map(cells, |(id, c, n)| {
        let machine = Machine::paper(Shape::new(c, n));
        let kernel = id.build(&machine);
        let lint = lint_kernel(&kernel);
        let compiled = ctx
            .scope
            .compile_default(&kernel, &machine)
            .expect("suite kernels schedule on all paper machines");
        let report = check_schedule(compiled.ddg(), compiled.schedule(), &machine);
        let mut tape_report = stream_verify::Report::new();
        for config in tape_configs() {
            tape_report.merge(validate_tape(&Tape::compile_with(&kernel, config)));
        }
        (
            lint.error_count(),
            lint.warning_count(),
            report.error_count(),
            report.warning_count(),
            tape_report.error_count(),
            tape_report.warning_count(),
        )
    });
    let configs_per_kernel = FIG14_CS.len() * FIG13_NS.len();
    let mut total_errors = 0usize;
    for (ki, id) in KernelId::ALL.iter().enumerate() {
        let mut sums = (0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
        for (le, lw, se, sw, te, tw) in
            &checks[ki * configs_per_kernel..(ki + 1) * configs_per_kernel]
        {
            sums = (
                sums.0 + le,
                sums.1 + lw,
                sums.2 + se,
                sums.3 + sw,
                sums.4 + te,
                sums.5 + tw,
            );
        }
        let (lint_errors, lint_warnings, sched_errors, sched_warnings, tape_errors, tape_warnings) =
            sums;
        total_errors += sched_errors + lint_errors + tape_errors;
        r.row([
            id.name().to_string(),
            configs_per_kernel.to_string(),
            sched_errors.to_string(),
            sched_warnings.to_string(),
            lint_errors.to_string(),
            lint_warnings.to_string(),
            tape_errors.to_string(),
            tape_warnings.to_string(),
        ]);
    }
    r.note(format!(
        "verifier re-derives slot usage, dependences, ResMII/RecMII, and register pressure; \
         tapes are translation-validated under {} compiler configs each; {total_errors} error(s) total",
        tape_configs().len()
    ));
    r.note("diagnostic codes are cataloged in docs/lint_codes.md");
    r
}

/// The verification sweep, on an engine sized to the host.
pub fn verify() -> Report {
    crate::run(ExperimentId::Verify)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_verifies_clean() {
        let r = verify();
        for row in &r.rows {
            assert_eq!(row[2], "0", "schedule errors for {}", row[0]);
            assert_eq!(row[4], "0", "lint errors for {}", row[0]);
            assert_eq!(row[6], "0", "tape validation errors for {}", row[0]);
        }
    }
}
