//! The per-experiment sweep context: one [`Ctx`] wraps the engine an
//! experiment runs on, a deterministic cache-counting scope, and the
//! accumulated timing stats for its sweeps. [`Ctx::finish`] writes the
//! deterministic cache counters into the report's notes and the (run-to-run
//! variable) wall-clock numbers into [`Report::perf`], which `Display`
//! never renders — keeping `--jobs 1` and `--jobs N` output byte-identical.

use crate::Report;
use std::sync::Mutex;
use stream_grid::{CacheScope, Engine, SweepStats};

pub(crate) struct Ctx<'e> {
    engine: &'e Engine,
    pub(crate) scope: CacheScope<'static>,
    stats: Mutex<SweepStats>,
}

impl<'e> Ctx<'e> {
    pub(crate) fn new(engine: &'e Engine) -> Self {
        Self {
            engine,
            scope: engine.scope(),
            stats: Mutex::new(SweepStats::default()),
        }
    }

    /// Maps `f` over `items` through the engine (results keep item order)
    /// and folds the sweep's timing into this context.
    pub(crate) fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let sweep = self.engine.map(items, f);
        self.stats
            .lock()
            .expect("sweep stats poisoned")
            .absorb(&sweep.stats);
        sweep.results
    }

    /// Writes this context's counters into `r`: cache counters (exact and
    /// scheduling-independent) as a rendered note, timings as unrendered
    /// perf lines.
    pub(crate) fn finish(self, r: &mut Report) {
        let c = self.scope.counters();
        if c.lookups > 0 {
            r.note(format!(
                "compile cache: {} lookups = {} distinct schedules + {} hits",
                c.lookups, c.compiles, c.hits
            ));
        }
        let stats = self.stats.into_inner().expect("sweep stats poisoned");
        if stats.jobs > 0 {
            r.perf.push(format!(
                "{} sweep jobs on {} thread(s): busy {} us, wall {} us",
                stats.jobs,
                stats.threads,
                stats.busy_micros(),
                stats.wall_micros
            ));
        }
    }
}
