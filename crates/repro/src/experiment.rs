//! The typed experiment identifier.
//!
//! [`ExperimentId`] is the single source of truth for which experiments
//! exist: the legacy [`crate::EXPERIMENTS`] string array is derived from
//! [`ExperimentId::ALL`] at compile time, so the two can never drift.

use std::fmt;
use std::str::FromStr;

/// Every table, figure, and extension experiment the harness can
/// regenerate, in paper order (the paper's artifacts first, then the
/// extension experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExperimentId {
    /// Table 1: the VLSI model parameters.
    Table1,
    /// Table 2: kernel inner-loop characteristics.
    Table2,
    /// Table 3: area/delay/energy of the baseline machine's structures.
    Table3,
    /// Table 4: the kernel and application inventory.
    Table4,
    /// Cost-model calibration anchors.
    Calibration,
    /// Figure 6: intracluster area per ALU vs `N`.
    Fig6,
    /// Figure 7: intracluster energy per op vs `N`.
    Fig7,
    /// Figure 8: intracluster delay vs `N`.
    Fig8,
    /// Figure 9: intercluster area per ALU vs `C`.
    Fig9,
    /// Figure 10: intercluster energy per op vs `C`.
    Fig10,
    /// Figure 11: intercluster delay vs `C`.
    Fig11,
    /// Figure 12: combined area/energy across the `(C, N)` grid.
    Fig12,
    /// Figure 13: intracluster kernel speedup (C=8, over N=5).
    Fig13,
    /// Figure 14: intercluster kernel speedup (N=5, over C=8).
    Fig14,
    /// Table 5: kernel performance per unit area.
    Table5,
    /// Figure 15: application performance across the design space.
    Fig15,
    /// The abstract's headline claims vs this reproduction.
    Headline,
    /// Section 2.2's three-tier bandwidth hierarchy.
    Bandwidth,
    /// Section 4.3's full-custom methodology sensitivity.
    FullCustom,
    /// Process-node projection of the conclusion.
    Projection,
    /// Sparse-crossbar ablation (proposed future work).
    AblationSwitch,
    /// Software-pipelining ablation.
    AblationSwp,
    /// Fixed vs machine-scaled datasets (Section 5.3).
    ScaledDatasets,
    /// Kernel call efficiency vs stream length.
    ShortStreams,
    /// DRAM access-pattern sensitivity.
    AblationMemory,
    /// One big processor vs M smaller ones (future work).
    Multiproc,
    /// Unified vs stream register organization.
    RegisterOrg,
    /// FFT local-gather vs intercluster-exchange formulations.
    FftExchange,
    /// Per-application auto-tuning: tuned vs default configuration.
    Tune,
    /// Independent schedule verification across the `(C, N)` grid.
    Verify,
}

impl ExperimentId {
    /// Every experiment, in the order `repro all` runs them.
    pub const ALL: [ExperimentId; 30] = [
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Calibration,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Fig10,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Table5,
        ExperimentId::Fig15,
        ExperimentId::Headline,
        ExperimentId::Bandwidth,
        ExperimentId::FullCustom,
        ExperimentId::Projection,
        ExperimentId::AblationSwitch,
        ExperimentId::AblationSwp,
        ExperimentId::ScaledDatasets,
        ExperimentId::ShortStreams,
        ExperimentId::AblationMemory,
        ExperimentId::Multiproc,
        ExperimentId::RegisterOrg,
        ExperimentId::FftExchange,
        ExperimentId::Tune,
        ExperimentId::Verify,
    ];

    /// The experiment's command-line / report id.
    pub const fn name(self) -> &'static str {
        match self {
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Table4 => "table4",
            ExperimentId::Calibration => "calibration",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Table5 => "table5",
            ExperimentId::Fig15 => "fig15",
            ExperimentId::Headline => "headline",
            ExperimentId::Bandwidth => "bandwidth",
            ExperimentId::FullCustom => "full_custom",
            ExperimentId::Projection => "projection",
            ExperimentId::AblationSwitch => "ablation_switch",
            ExperimentId::AblationSwp => "ablation_swp",
            ExperimentId::ScaledDatasets => "scaled_datasets",
            ExperimentId::ShortStreams => "short_streams",
            ExperimentId::AblationMemory => "ablation_memory",
            ExperimentId::Multiproc => "multiproc",
            ExperimentId::RegisterOrg => "register_org",
            ExperimentId::FftExchange => "fft_exchange",
            ExperimentId::Tune => "tune",
            ExperimentId::Verify => "verify",
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an experiment id string that names no experiment.
///
/// Carries the offending input and, when some experiment name is close
/// enough (edit distance ≤ 3), a typed nearest-name suggestion:
///
/// ```
/// use stream_repro::ExperimentId;
///
/// let err = "fgi13".parse::<ExperimentId>().unwrap_err();
/// assert_eq!(err.input, "fgi13");
/// assert_eq!(err.suggestion, Some(ExperimentId::Fig13));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct UnknownExperiment {
    /// The id that failed to parse.
    pub input: String,
    /// The closest known experiment, if any name is plausibly a typo of it.
    pub suggestion: Option<ExperimentId>,
}

impl fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown experiment `{}`", self.input)?;
        if let Some(s) = self.suggestion {
            write!(f, " (did you mean `{s}`?)")?;
        }
        write!(f, "; known:")?;
        for id in ExperimentId::ALL {
            write!(f, " {id}")?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownExperiment {}

/// Levenshtein edit distance, for the nearest-name suggestion. Inputs are
/// experiment-id sized (≤ ~16 bytes), so the quadratic DP is plenty.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

impl UnknownExperiment {
    fn for_input(s: &str) -> Self {
        let lowered = s.to_ascii_lowercase();
        let suggestion = ExperimentId::ALL
            .into_iter()
            .map(|id| (edit_distance(&lowered, id.name()), id))
            .min_by_key(|&(d, id)| (d, id))
            .filter(|&(d, _)| d <= 3)
            .map(|(_, id)| id);
        Self {
            input: s.to_string(),
            suggestion,
        }
    }
}

impl FromStr for ExperimentId {
    type Err = UnknownExperiment;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExperimentId::ALL
            .into_iter()
            .find(|id| id.name() == s)
            .ok_or_else(|| UnknownExperiment::for_input(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_fromstr_and_display() {
        for id in ExperimentId::ALL {
            assert_eq!(id.to_string().parse::<ExperimentId>(), Ok(id));
        }
    }

    #[test]
    fn unknown_names_report_the_request_and_the_catalog() {
        let err = "fig99".parse::<ExperimentId>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown experiment `fig99`"), "{msg}");
        assert!(msg.contains("table1") && msg.contains("verify"), "{msg}");
    }

    #[test]
    fn near_misses_get_a_suggestion() {
        for (typo, want) in [
            ("fgi13", ExperimentId::Fig13),
            ("tabel5", ExperimentId::Table5),
            ("fig99", ExperimentId::Fig9),
            ("headlines", ExperimentId::Headline),
            ("ablation-swp", ExperimentId::AblationSwp),
            ("tuen", ExperimentId::Tune),
            ("VERIFY", ExperimentId::Verify),
        ] {
            let err = typo.parse::<ExperimentId>().unwrap_err();
            assert_eq!(err.suggestion, Some(want), "{typo}");
            assert!(err.to_string().contains("did you mean"), "{typo}");
        }
        // Nothing is a plausible typo of gibberish.
        let err = "zzzzzzzzzzzz".parse::<ExperimentId>().unwrap_err();
        assert_eq!(err.suggestion, None);
        assert!(!err.to_string().contains("did you mean"));
    }

    #[test]
    fn edit_distance_is_symmetric_and_sane() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("fig13", "fig13"), 0);
        assert_eq!(edit_distance("fig13", "fig14"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("sitting", "kitten"), 3);
    }

    #[test]
    fn all_names_are_distinct() {
        let mut names: Vec<&str> = ExperimentId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ExperimentId::ALL.len());
    }
}
