//! The sweep engine's central guarantee: the rendered report of every
//! experiment is byte-identical no matter how many worker threads ran it.

use stream_grid::Engine;
use stream_repro::{run_many, run_with, ExperimentId};

/// A mixed subset cheap enough for the test but covering every sweep shape:
/// a compile grid (fig13), a two-options-per-kernel sweep (ablation_swp), a
/// multi-compile-per-job grid slice (fft_exchange), and a serial cost-model
/// table (bandwidth).
const SUBSET: [ExperimentId; 4] = [
    ExperimentId::Fig13,
    ExperimentId::AblationSwp,
    ExperimentId::FftExchange,
    ExperimentId::Bandwidth,
];

#[test]
fn four_workers_render_byte_identical_to_one() {
    for id in SUBSET {
        let serial = run_with(id, &Engine::new(1)).to_string();
        let parallel = run_with(id, &Engine::new(4)).to_string();
        assert_eq!(serial, parallel, "{id} diverges across worker counts");
    }
}

#[test]
fn tracing_does_not_change_rendered_reports() {
    // The determinism contract of `stream-trace`: spans and counters go to
    // the collector (and eventually a file or stderr), never into report
    // bodies, so a traced run renders byte-identically to an untraced one
    // at any worker count.
    //
    // The traced run goes FIRST and uses fig14 (no other test in this binary
    // touches it): the kernel cache compiles each key exactly once per
    // process, so a cache-warm traced run would never reach the scheduler
    // and the span assertions below would see no "sched" events.
    let id = ExperimentId::Fig14;
    stream_trace::enable();
    let traced = run_with(id, &Engine::new(2)).to_string();
    let traced_serial = run_with(id, &Engine::new(1)).to_string();
    stream_trace::disable();
    let events = stream_trace::take_events();
    let untraced = run_with(id, &Engine::new(2)).to_string();
    assert_eq!(untraced, traced, "tracing changed {id} output");
    assert_eq!(
        untraced, traced_serial,
        "tracing+serial changed {id} output"
    );
    // The traced run actually recorded something from the layers fig14
    // exercises: scheduler compiles, tape smoke executions, grid jobs.
    for cat in ["sched", "tape", "grid"] {
        assert!(
            events.iter().any(|e| e.cat == cat),
            "no {cat} span collected"
        );
    }
}

#[test]
fn run_many_preserves_request_order_and_serial_output() {
    let serial: Vec<String> = run_many(&SUBSET, &Engine::new(1))
        .iter()
        .map(ToString::to_string)
        .collect();
    let parallel: Vec<String> = run_many(&SUBSET, &Engine::new(4))
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(serial, parallel);
    for (id, rendered) in SUBSET.iter().zip(&serial) {
        assert!(
            rendered.starts_with(&format!("== {id}")),
            "report order should match request order: wanted {id}, got {}",
            rendered.lines().next().unwrap_or("")
        );
    }
}
