//! DCT: 8x8 two-dimensional discrete cosine transform kernel (the fifth
//! kernel the paper's Table 2 measures, 16-bit data computed in f32).
//!
//! Each record is one 8x8 pixel block, split across the available
//! streambuffers like the other wide-record kernels. The kernel applies the
//! separable transform: a 1-D 8-point DCT-II on every row, a scratchpad
//! round trip for the transpose (the paper's DCT is scratchpad-heavy for
//! exactly this staging), then a 1-D DCT on every column.

use crate::split::{gather_words, scatter_words, split_plan};
use crate::util::{words_f32, XorShift32};
use std::f32::consts::PI;
use stream_ir::{Kernel, KernelBuilder, Ty, ValueId};
use stream_machine::Machine;

/// Words per record: one 8x8 block.
pub const BLOCK: usize = 64;

/// The 8-point DCT-II basis, `c[k][j]`.
pub fn basis() -> [[f32; 8]; 8] {
    std::array::from_fn(|k| {
        std::array::from_fn(|j| {
            let scale = if k == 0 {
                (1.0f32 / 8.0).sqrt()
            } else {
                (2.0f32 / 8.0).sqrt()
            };
            scale * ((PI / 8.0) * (j as f32 + 0.5) * k as f32).cos()
        })
    })
}

/// Streambuffer split plan `(block_in, block_out)` for `machine`.
pub fn splits(machine: &Machine) -> [u32; 2] {
    let widths = [BLOCK as u32, BLOCK as u32];
    let plan = split_plan(&widths, machine.derived().cluster_sbs);
    [plan[0], plan[1]]
}

/// Builds the DCT kernel for `machine`.
pub fn kernel(machine: &Machine) -> Kernel {
    let [ki, ko] = splits(machine);
    let mut b = KernelBuilder::new("dct");
    b.require_sp(BLOCK as u32);

    let ins: Vec<_> = (0..ki).map(|_| b.in_stream(Ty::F32)).collect();
    let outs: Vec<_> = (0..ko).map(|_| b.out_stream(Ty::F32)).collect();
    let cb = basis();

    // Read the block (row-major).
    let x: Vec<ValueId> = (0..BLOCK).map(|j| b.read(ins[j % ki as usize])).collect();

    // 1-D DCT on each row, staging results into the scratchpad.
    let consts: Vec<Vec<ValueId>> = cb
        .iter()
        .map(|row| row.iter().map(|&v| b.const_f(v)).collect())
        .collect();
    for row in 0..8 {
        for k in 0..8 {
            let mut acc: Option<ValueId> = None;
            for j in 0..8 {
                let t = b.mul(consts[k][j], x[row * 8 + j]);
                acc = Some(match acc {
                    Some(a) => b.add(a, t),
                    None => t,
                });
            }
            // Store transposed: column k, row `row`.
            let addr = b.const_i((k * 8 + row) as i32);
            b.sp_write(addr, acc.expect("eight taps"));
        }
    }

    // 1-D DCT down each (now contiguous) column, from the scratchpad.
    for col in 0..8 {
        let mut stage: Vec<ValueId> = Vec::with_capacity(8);
        for r in 0..8 {
            let addr = b.const_i((col * 8 + r) as i32);
            stage.push(b.sp_read(addr, Ty::F32));
        }
        for k in 0..8 {
            let mut acc: Option<ValueId> = None;
            for (j, &s) in stage.iter().enumerate() {
                let t = b.mul(consts[k][j], s);
                acc = Some(match acc {
                    Some(a) => b.add(a, t),
                    None => t,
                });
            }
            // The j-th write (program order) goes to stream j % ko; the
            // gather helper un-permutes (col, k) back to row-major.
            let j = col * 8 + k;
            b.write(outs[j % ko as usize], acc.expect("eight taps"));
        }
    }

    b.finish().expect("dct kernel is structurally valid")
}

/// Scalar reference: 2-D DCT of each 8x8 block (row-major blocks), with the
/// kernel's output ordering. The kernel writes outputs in `(k, col)` order
/// but routes them to row-major positions, so the reference is plain
/// row-major 2-D DCT coefficients.
pub fn reference(blocks: &[f32]) -> Vec<f32> {
    assert_eq!(blocks.len() % BLOCK, 0);
    let cb = basis();
    let mut out = vec![0f32; blocks.len()];
    for (bi, block) in blocks.chunks(BLOCK).enumerate() {
        // Rows.
        let mut stage = [[0f32; 8]; 8]; // stage[col][row] (transposed)
        for row in 0..8 {
            for k in 0..8 {
                let mut acc = 0f32;
                for j in 0..8 {
                    acc += cb[k][j] * block[row * 8 + j];
                }
                stage[k][row] = acc;
            }
        }
        // Columns.
        for col in 0..8 {
            for k in 0..8 {
                let mut acc = 0f32;
                for (j, s) in stage[col].iter().enumerate() {
                    acc += cb[k][j] * s;
                }
                out[bi * BLOCK + k * 8 + col] = acc;
            }
        }
    }
    out
}

/// Scatters row-major blocks into the kernel's split input streams.
pub fn input_streams(blocks: &[f32], machine: &Machine) -> Vec<Vec<stream_ir::Scalar>> {
    let [ki, _] = splits(machine);
    scatter_words(&words_f32(blocks.to_vec()), BLOCK as u32, ki)
}

/// Gathers the kernel's split outputs back into row-major blocks. The
/// kernel emits words in `(k, col)` order, so un-permute to row-major.
pub fn gather_output(outs: &[Vec<stream_ir::Scalar>], machine: &Machine) -> Vec<f32> {
    let [_, ko] = splits(machine);
    assert_eq!(outs.len(), ko as usize);
    let flat = gather_words(outs, BLOCK as u32);
    // The kernel's j-th write within a record was coefficient
    // (k, col) with k = j / 8? No: writes iterate col-major (col outer,
    // k inner) mapping to word k*8+col only in routing order; the j-th
    // write is (col = j / 8, k = j % 8) -> row-major index k*8+col.
    let mut out = vec![0f32; flat.len()];
    for (r, rec) in flat.chunks(BLOCK).enumerate() {
        for (j, w) in rec.iter().enumerate() {
            let col = j / 8;
            let k = j % 8;
            out[r * BLOCK + k * 8 + col] = w.as_f32().expect("f32 dct output");
        }
    }
    out
}

/// Deterministic sample blocks.
pub fn sample_blocks(count: usize, seed: u32) -> Vec<f32> {
    let mut rng = XorShift32(seed);
    (0..count * BLOCK)
        .map(|_| rng.next_f32() * 255.0 - 128.0)
        .collect()
}

/// The paper's Table 2 row for DCT: `(ALU, SRF, COMM, SP)`.
pub const PAPER_TABLE2: (u32, u32, u32, u32) = (150, 16, 7, 32);

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{execute, ExecConfig};

    #[test]
    fn matches_reference() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let blocks = sample_blocks(16, 7);
        let outs = execute(
            &k,
            &[],
            &input_streams(&blocks, &machine),
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        let got = gather_output(&outs, &machine);
        let want = reference(&blocks);
        for i in 0..got.len() {
            assert!(
                (got[i] - want[i]).abs() < 1e-2 * (1.0 + want[i].abs()),
                "word {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn constant_block_is_dc_only() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let blocks = vec![64.0f32; 8 * BLOCK];
        let outs = execute(
            &k,
            &[],
            &input_streams(&blocks, &machine),
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        let got = gather_output(&outs, &machine);
        // DC coefficient = 8 * 64 (orthonormal basis), everything else ~0.
        for block in got.chunks(BLOCK) {
            assert!((block[0] - 512.0).abs() < 0.1, "DC = {}", block[0]);
            for &ac in &block[1..] {
                assert!(ac.abs() < 1e-2, "AC leak {ac}");
            }
        }
    }

    #[test]
    fn dct_preserves_energy() {
        // Orthonormal transform: Parseval per block.
        let blocks = sample_blocks(4, 21);
        let out = reference(&blocks);
        for (b, o) in blocks.chunks(BLOCK).zip(out.chunks(BLOCK)) {
            let eb: f32 = b.iter().map(|x| x * x).sum();
            let eo: f32 = o.iter().map(|x| x * x).sum();
            assert!((eb - eo).abs() < 1e-2 * eb, "{eb} vs {eo}");
        }
    }

    #[test]
    fn stats_are_in_the_expected_band() {
        let s = kernel(&Machine::baseline()).stats();
        // A whole 8x8 block per record: 128 8-tap MAC groups (15 ops each)
        // = 1920 ALU ops, 128 scratchpad accesses for the transpose
        // staging, 128 SRF words. Per block *row* that is 240 ALU ops and
        // 16 SP accesses — the same league as the paper's per-row DCT
        // measurement (150 ALU, 32 SP).
        assert_eq!(s.alu_ops, 1920);
        assert_eq!(s.srf_accesses, 128);
        assert_eq!(s.sp_accesses, 128);
        assert_eq!(s.comms, 0);
    }

    #[test]
    fn splits_fit_streambuffers() {
        for n in [2u32, 5, 10, 16] {
            let m = Machine::paper(stream_vlsi::Shape::new(8, n));
            let s = splits(&m);
            assert!(s.iter().sum::<u32>() <= m.derived().cluster_sbs);
        }
    }
}
