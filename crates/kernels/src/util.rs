//! Shared helpers for kernel construction and test data.

use stream_ir::{KernelBuilder, Scalar, ValueId};

/// Emits `(base + delta) mod c` for a power-of-two cluster count `c`, the
/// index arithmetic every neighbor-exchange kernel needs.
///
/// # Panics
///
/// Panics if `c` is not a power of two (the paper's machines are 8..256).
pub fn wrap_cluster(b: &mut KernelBuilder, base: ValueId, delta: i32, c: u32) -> ValueId {
    assert!(c.is_power_of_two(), "cluster counts are powers of two");
    let d = b.const_i(delta.rem_euclid(c as i32));
    let sum = b.add(base, d);
    let mask = b.const_i(c as i32 - 1);
    b.and(sum, mask)
}

/// Emits `base ^ bit` (butterfly partner index).
pub fn xor_cluster(b: &mut KernelBuilder, base: ValueId, bit: i32) -> ValueId {
    let x = b.const_i(bit);
    b.xor(base, x)
}

/// Wraps `i32` samples as IR scalars.
pub fn words_i32(values: impl IntoIterator<Item = i32>) -> Vec<Scalar> {
    values.into_iter().map(Scalar::I32).collect()
}

/// Wraps `f32` samples as IR scalars.
pub fn words_f32(values: impl IntoIterator<Item = f32>) -> Vec<Scalar> {
    values.into_iter().map(Scalar::F32).collect()
}

/// Unwraps i32 outputs (panics on type confusion — tests only).
pub fn to_i32(words: &[Scalar]) -> Vec<i32> {
    words
        .iter()
        .map(|w| w.as_i32().expect("i32 stream"))
        .collect()
}

/// Unwraps f32 outputs (panics on type confusion — tests only).
pub fn to_f32(words: &[Scalar]) -> Vec<f32> {
    words
        .iter()
        .map(|w| w.as_f32().expect("f32 stream"))
        .collect()
}

/// A tiny deterministic PRNG (xorshift32) so kernels and references see the
/// same data without pulling `rand` into the library's public surface.
#[derive(Debug, Clone)]
pub struct XorShift32(pub u32);

impl XorShift32 {
    /// Next raw value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    /// Uniform integer in `0..bound`.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound.max(1)
    }

    /// Uniform float in [0, 1).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1 << 24) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{execute, ExecConfig, Ty};

    #[test]
    fn wrap_cluster_wraps() {
        let mut b = KernelBuilder::new("wrap");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let _x = b.read(s);
        let cid = b.cluster_id();
        let left = wrap_cluster(&mut b, cid, -1, 4);
        b.write(out, left);
        let k = b.finish().unwrap();
        let outs = execute(&k, &[], &[words_i32(0..4)], &ExecConfig::with_clusters(4)).unwrap();
        assert_eq!(to_i32(&outs[0]), vec![3, 0, 1, 2]);
    }

    #[test]
    fn xor_cluster_is_butterfly() {
        let mut b = KernelBuilder::new("xor");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let _x = b.read(s);
        let cid = b.cluster_id();
        let p = xor_cluster(&mut b, cid, 2);
        b.write(out, p);
        let k = b.finish().unwrap();
        let outs = execute(&k, &[], &[words_i32(0..4)], &ExecConfig::with_clusters(4)).unwrap();
        assert_eq!(to_i32(&outs[0]), vec![2, 3, 0, 1]);
    }

    #[test]
    fn prng_is_deterministic_and_bounded() {
        let mut a = XorShift32(42);
        let mut b = XorShift32(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
            let f = a.next_f32();
            assert!((0.0..1.0).contains(&f));
            let _ = b.next_f32();
            assert!(a.next_below(7) < 7);
            let _ = b.next_below(7);
        }
    }
}
