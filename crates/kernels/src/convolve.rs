//! Convolve: separable 7x7 steerable filter pair (Table 4, 16-bit data,
//! computed in f32 as Imagine's tools did for filter kernels).
//!
//! Seven image rows stream in (one pixel column per cluster): the center
//! row as a one-word stream and the three symmetric row pairs packed as
//! two-word records, so the kernel fits the cluster's streambuffers even at
//! small `N`. The kernel computes a vertical Gaussian `G_v` and a vertical
//! derivative `D_v`,
//! exchanges both with the six horizontally adjacent clusters over the
//! intercluster switch, then forms the smoothed plane (`G_h * G_v`), the
//! gradient pair (`D_h * G_v`, `G_h * D_v`), and the edge magnitude — the
//! filter bank a stereo/feature front end actually runs. Columns wrap
//! within a SIMD strip.

use crate::util::{words_f32, wrap_cluster, XorShift32};
use stream_ir::{Kernel, KernelBuilder, Scalar, Ty, ValueId};
use stream_machine::Machine;

/// Filter taps: a symmetric 7-tap Gaussian (`g[|k|]`, offsets 0..=3) and an
/// antisymmetric 7-tap derivative (`d[k]`, offsets 1..=3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Taps {
    /// Gaussian taps by absolute offset.
    pub gauss: [f32; 4],
    /// Derivative taps by positive offset (applied antisymmetrically).
    pub deriv: [f32; 3],
}

impl Taps {
    /// A Gaussian/derivative-of-Gaussian pair.
    pub fn gaussian() -> Self {
        Self {
            gauss: [0.3125, 0.234_375, 0.09375, 0.015_625],
            deriv: [0.5, 0.15, 0.025],
        }
    }

    fn params(&self) -> Vec<Scalar> {
        self.gauss
            .iter()
            .chain(self.deriv.iter())
            .map(|&v| Scalar::F32(v))
            .collect()
    }
}

/// Builds the Convolve kernel for `machine`. Coefficients are uniform
/// scalar parameters — pass [`params`] at execution.
pub fn kernel(machine: &Machine) -> Kernel {
    let c = machine.clusters();
    let mut b = KernelBuilder::new("convolve");

    let center = b.in_stream(Ty::F32);
    let pairs: Vec<_> = (0..3).map(|_| b.in_stream(Ty::F32)).collect();
    let smooth_out = b.out_stream(Ty::F32);
    let edge_out = b.out_stream(Ty::F32);

    let g: Vec<ValueId> = (0..4).map(|_| b.param(Ty::F32)).collect();
    let d: Vec<ValueId> = (0..3).map(|_| b.param(Ty::F32)).collect();

    // Vertical passes over the streamed rows: px[3] is the center row;
    // pair stream k carries (row[3-k], row[3+k]) records.
    let mut px: Vec<ValueId> = vec![ValueId(0); 7];
    px[3] = b.read(center);
    for k in 1..=3usize {
        px[3 - k] = b.read(pairs[k - 1]);
        px[3 + k] = b.read(pairs[k - 1]);
    }
    let mut gv = b.mul(g[0], px[3]);
    for k in 1..=3usize {
        let lo = b.mul(g[k], px[3 - k]);
        let hi = b.mul(g[k], px[3 + k]);
        gv = b.add(gv, lo);
        gv = b.add(gv, hi);
    }
    let mut dv: Option<ValueId> = None;
    for k in 1..=3usize {
        let diff = b.sub(px[3 + k], px[3 - k]);
        let term = b.mul(d[k - 1], diff);
        dv = Some(match dv {
            Some(acc) => b.add(acc, term),
            None => term,
        });
    }
    let dv = dv.expect("three derivative taps");

    // Exchange both vertical responses with the six column neighbors.
    let cid = b.cluster_id();
    let mut nb: Vec<(i32, ValueId, ValueId)> = Vec::new();
    for dc in [-3i32, -2, -1, 1, 2, 3] {
        let idx = wrap_cluster(&mut b, cid, dc, c);
        let ngv = b.comm(gv, idx);
        let ndv = b.comm(dv, idx);
        nb.push((dc, ngv, ndv));
    }
    let gv_at = |dc: i32| -> ValueId {
        if dc == 0 {
            gv
        } else {
            nb.iter().find(|&&(o, _, _)| o == dc).unwrap().1
        }
    };
    let dv_at = |dc: i32| -> ValueId {
        if dc == 0 {
            dv
        } else {
            nb.iter().find(|&&(o, _, _)| o == dc).unwrap().2
        }
    };

    // smooth = G_h * G_v ; gy = G_h * D_v (same symmetric structure).
    let symmetric = |b: &mut KernelBuilder, at: &dyn Fn(i32) -> ValueId| -> ValueId {
        let mut acc = b.mul(g[0], at(0));
        for k in 1..=3i32 {
            let pair = b.add(at(-k), at(k));
            let term = b.mul(g[k as usize], pair);
            acc = b.add(acc, term);
        }
        acc
    };
    let smooth = symmetric(&mut b, &gv_at);
    let gy = symmetric(&mut b, &dv_at);
    // gx = D_h * G_v (antisymmetric).
    let mut gx: Option<ValueId> = None;
    for k in 1..=3i32 {
        let diff = b.sub(gv_at(k), gv_at(-k));
        let term = b.mul(d[k as usize - 1], diff);
        gx = Some(match gx {
            Some(acc) => b.add(acc, term),
            None => term,
        });
    }
    let gx = gx.expect("three taps");

    // Edge magnitude.
    let gx2 = b.mul(gx, gx);
    let gy2 = b.mul(gy, gy);
    let e2 = b.add(gx2, gy2);
    let edge = b.sqrt(e2);

    b.write(smooth_out, smooth);
    b.write(edge_out, edge);
    b.finish().expect("convolve kernel is structurally valid")
}

/// The kernel's parameter vector for `taps`.
pub fn params(taps: &Taps) -> Vec<Scalar> {
    taps.params()
}

/// Scalar reference producing `(smoothed, edge)` with the kernel's
/// strip-wrapped column semantics and accumulation order.
pub fn reference(rows: &[Vec<f32>; 7], taps: &Taps, clusters: usize) -> (Vec<f32>, Vec<f32>) {
    let cols = rows[0].len();
    assert!(cols.is_multiple_of(clusters));
    let strips = cols / clusters;
    let mut gv = vec![0f32; cols];
    let mut dv = vec![0f32; cols];
    for col in 0..cols {
        let mut acc = taps.gauss[0] * rows[3][col];
        for k in 1..=3usize {
            acc += taps.gauss[k] * rows[3 - k][col];
            acc += taps.gauss[k] * rows[3 + k][col];
        }
        gv[col] = acc;
        let mut dacc = 0f32;
        for k in 1..=3usize {
            dacc += taps.deriv[k - 1] * (rows[3 + k][col] - rows[3 - k][col]);
        }
        dv[col] = dacc;
    }
    let mut smooth = vec![0f32; cols];
    let mut edge = vec![0f32; cols];
    for t in 0..strips {
        let at = |v: &[f32], c: i32| -> f32 {
            let nb = c.rem_euclid(clusters as i32) as usize;
            v[t * clusters + nb]
        };
        for c in 0..clusters {
            let col = t * clusters + c;
            let ci = c as i32;
            let sym = |v: &[f32]| -> f32 {
                let mut acc = taps.gauss[0] * at(v, ci);
                for k in 1..=3i32 {
                    acc += taps.gauss[k as usize] * (at(v, ci - k) + at(v, ci + k));
                }
                acc
            };
            smooth[col] = sym(&gv);
            let gy = sym(&dv);
            let mut gx = 0f32;
            for k in 1..=3i32 {
                gx += taps.deriv[k as usize - 1] * (at(&gv, ci + k) - at(&gv, ci - k));
            }
            edge[col] = (gx * gx + gy * gy).sqrt();
        }
    }
    (smooth, edge)
}

/// Deterministic sample rows of pixel data.
pub fn sample_rows(columns: usize, seed: u32) -> [Vec<f32>; 7] {
    let mut rng = XorShift32(seed);
    std::array::from_fn(|_| (0..columns).map(|_| rng.next_f32() * 255.0).collect())
}

/// Packs reference-format rows into kernel input streams: the center row
/// plus three interleaved symmetric pair streams.
pub fn input_streams(rows: &[Vec<f32>; 7]) -> Vec<Vec<Scalar>> {
    let mut streams = vec![words_f32(rows[3].iter().copied())];
    for k in 1..=3usize {
        let interleaved: Vec<f32> = rows[3 - k]
            .iter()
            .zip(&rows[3 + k])
            .flat_map(|(&lo, &hi)| [lo, hi])
            .collect();
        streams.push(words_f32(interleaved));
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_f32;
    use stream_ir::{execute, ExecConfig};

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-3 * (1.0 + y.abs()),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let taps = Taps::gaussian();
        let rows = sample_rows(64, 11);
        let outs = execute(
            &k,
            &params(&taps),
            &input_streams(&rows),
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        let (smooth, edge) = reference(&rows, &taps, 8);
        assert_close(&to_f32(&outs[0]), &smooth);
        assert_close(&to_f32(&outs[1]), &edge);
    }

    #[test]
    fn constant_image_has_zero_edges() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let taps = Taps::gaussian();
        let rows: [Vec<f32>; 7] = std::array::from_fn(|_| vec![100.0; 16]);
        let outs = execute(
            &k,
            &params(&taps),
            &input_streams(&rows),
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        let gain: f32 = taps.gauss[0] + 2.0 * (taps.gauss[1] + taps.gauss[2] + taps.gauss[3]);
        for &v in to_f32(&outs[0]).iter() {
            assert!((v - 100.0 * gain * gain).abs() < 1e-2);
        }
        for &v in to_f32(&outs[1]).iter() {
            assert!(v.abs() < 1e-3, "edge of constant image = {v}");
        }
    }

    #[test]
    fn stats_are_in_the_expected_band() {
        let machine = Machine::baseline();
        let s = kernel(&machine).stats();
        assert!(s.alu_ops >= 55 && s.alu_ops <= 85, "alu = {}", s.alu_ops);
        assert_eq!(s.srf_accesses, 9); // 7 reads + 2 writes
        assert_eq!(s.comms, 12);
        assert_eq!(s.sp_accesses, 0);
    }

    #[test]
    fn matches_reference_on_16_clusters() {
        let machine = Machine::paper(stream_vlsi::Shape::new(16, 5));
        let k = kernel(&machine);
        let taps = Taps::gaussian();
        let rows = sample_rows(64, 5);
        let outs = execute(
            &k,
            &params(&taps),
            &input_streams(&rows),
            &ExecConfig::with_clusters(16),
        )
        .unwrap();
        let (smooth, edge) = reference(&rows, &taps, 16);
        assert_close(&to_f32(&outs[0]), &smooth);
        assert_close(&to_f32(&outs[1]), &edge);
    }
}
