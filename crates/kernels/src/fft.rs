//! FFT: radix-4 decimation-in-time butterfly kernel (Table 4, floating
//! point), plus the scalar reference FFT and the per-stage record builders
//! the FFT applications use.
//!
//! Each stream record carries one radix-4 butterfly: four complex points and
//! three complex twiddles (twiddles are streamed, as Imagine's FFT did —
//! they account for much of the paper's high SRF access count). The
//! application composes `log4(n)` stage invocations over digit-reversed
//! input; inter-stage reordering is SRF addressing.

use crate::split::{gather_words, scatter_words, split_plan};
use crate::util::words_f32;
use std::f32::consts::PI;
use stream_ir::{Kernel, KernelBuilder, Scalar, Ty, ValueId};
use stream_machine::Machine;

/// Words per data record: four complex points.
pub const DATA_WIDTH: u32 = 8;
/// Words per twiddle record: three complex twiddles.
pub const TWIDDLE_WIDTH: u32 = 6;

/// Streambuffer split plan `(data_in, twiddle_in, data_out)` for `machine`.
pub fn splits(machine: &Machine) -> [u32; 3] {
    let widths = [DATA_WIDTH, TWIDDLE_WIDTH, DATA_WIDTH];
    let plan = split_plan(&widths, machine.derived().cluster_sbs);
    [plan[0], plan[1], plan[2]]
}

/// Builds the radix-4 butterfly stage kernel for `machine`.
pub fn kernel(machine: &Machine) -> Kernel {
    let [kd, kt, ko] = splits(machine);
    let mut b = KernelBuilder::new("fft");

    let data: Vec<_> = (0..kd).map(|_| b.in_stream(Ty::F32)).collect();
    let twid: Vec<_> = (0..kt).map(|_| b.in_stream(Ty::F32)).collect();
    let outs: Vec<_> = (0..ko).map(|_| b.out_stream(Ty::F32)).collect();

    let x: Vec<ValueId> = (0..DATA_WIDTH as usize)
        .map(|j| b.read(data[j % kd as usize]))
        .collect();
    let w: Vec<ValueId> = (0..TWIDDLE_WIDTH as usize)
        .map(|j| b.read(twid[j % kt as usize]))
        .collect();

    // Complex multiply helper.
    let cmul = |b: &mut KernelBuilder,
                ar: ValueId,
                ai: ValueId,
                br: ValueId,
                bi: ValueId|
     -> (ValueId, ValueId) {
        let rr = b.mul(ar, br);
        let ii = b.mul(ai, bi);
        let ri = b.mul(ar, bi);
        let ir = b.mul(ai, br);
        (b.sub(rr, ii), b.add(ri, ir))
    };

    // t0 = x0; tq = wq * xq for q = 1..3.
    let (t0r, t0i) = (x[0], x[1]);
    let (t1r, t1i) = cmul(&mut b, x[2], x[3], w[0], w[1]);
    let (t2r, t2i) = cmul(&mut b, x[4], x[5], w[2], w[3]);
    let (t3r, t3i) = cmul(&mut b, x[6], x[7], w[4], w[5]);

    // Radix-4 combine (W4 = -i).
    let u0r = b.add(t0r, t2r);
    let u0i = b.add(t0i, t2i);
    let u1r = b.sub(t0r, t2r);
    let u1i = b.sub(t0i, t2i);
    let u2r = b.add(t1r, t3r);
    let u2i = b.add(t1i, t3i);
    let u3r = b.sub(t1r, t3r);
    let u3i = b.sub(t1i, t3i);

    let y0r = b.add(u0r, u2r);
    let y0i = b.add(u0i, u2i);
    let y2r = b.sub(u0r, u2r);
    let y2i = b.sub(u0i, u2i);
    // y1 = u1 - i*u3; y3 = u1 + i*u3.
    let y1r = b.add(u1r, u3i);
    let y1i = b.sub(u1i, u3r);
    let y3r = b.sub(u1r, u3i);
    let y3i = b.add(u1i, u3r);

    let y = [y0r, y0i, y1r, y1i, y2r, y2i, y3r, y3i];
    for (j, &v) in y.iter().enumerate() {
        b.write(outs[j % ko as usize], v);
    }

    b.finish().expect("fft kernel is structurally valid")
}

/// Builds the radix-2 *exchange* butterfly stage: partners sit in different
/// clusters (cluster ids differing in `bit`), so the butterfly's second
/// operand arrives over the intercluster switch — the COMM-heavy FFT
/// formulation the paper's Table 2 row reflects (40 comms per iteration).
/// Used for stages whose span is smaller than the cluster count.
///
/// Record: `(x_re, x_im)` for this cluster's point plus `(w_re, w_im)`,
/// the butterfly's twiddle (supplied identically to both partners).
///
/// # Panics
///
/// Panics unless `bit` is a power of two below the cluster count.
pub fn exchange_kernel(machine: &Machine, bit: u32) -> Kernel {
    let c = machine.clusters();
    assert!(bit.is_power_of_two() && bit < c, "bit {bit} vs C={c}");
    let mut b = KernelBuilder::new(format!("fft_exchange_b{bit}"));

    let data = b.in_stream(Ty::F32);
    let twid = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);

    let xr = b.read(data);
    let xi = b.read(data);
    let wr = b.read(twid);
    let wi = b.read(twid);

    // Fetch the partner's point across the intercluster switch.
    let cid = b.cluster_id();
    let bitv = b.const_i(bit as i32);
    let partner = b.xor(cid, bitv);
    let or = b.comm(xr, partner);
    let oi = b.comm(xi, partner);

    // Upper half (bit clear) holds `a`; lower half holds `b`.
    let masked = b.and(cid, bitv);
    let zero = b.const_i(0);
    let upper = b.eq(masked, zero);
    let ar = b.select(upper, xr, or);
    let ai = b.select(upper, xi, oi);
    let br = b.select(upper, or, xr);
    let bi = b.select(upper, oi, xi);

    // t = w * b.
    let rr = b.mul(wr, br);
    let ii = b.mul(wi, bi);
    let ri = b.mul(wr, bi);
    let ir = b.mul(wi, br);
    let tr = b.sub(rr, ii);
    let ti = b.add(ri, ir);

    // Upper emits a + t, lower emits a - t.
    let sum_r = b.add(ar, tr);
    let sum_i = b.add(ai, ti);
    let dif_r = b.sub(ar, tr);
    let dif_i = b.sub(ai, ti);
    let yr = b.select(upper, sum_r, dif_r);
    let yi = b.select(upper, sum_i, dif_i);
    b.write(out, yr);
    b.write(out, yi);

    b.finish()
        .expect("fft exchange kernel is structurally valid")
}

/// Reverses the low `log2(n)` bits of `i` (radix-2 input ordering).
pub fn bit_reverse2(i: usize, n: usize) -> usize {
    let bits = n.trailing_zeros();
    let mut r = 0usize;
    let mut x = i;
    for _ in 0..bits {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    r
}

/// Builds the exchange-stage input streams over `points` for butterfly
/// `span` (each cluster holds point `iter * C + cid`; partners differ in
/// the `span` bit of the point index, so `span < C` is required for the
/// partners to share an iteration).
pub fn exchange_stage_streams(points: &[C32], span: usize) -> Vec<Vec<Scalar>> {
    let n = points.len();
    let mut data = Vec::with_capacity(2 * n);
    let mut twid = Vec::with_capacity(2 * n);
    for (p, &(re, im)) in points.iter().enumerate() {
        data.push(re);
        data.push(im);
        // Twiddle of this point's butterfly: j = position within the
        // half-group, W over n points.
        let j = p % span;
        let w = twiddle(j * (n / (2 * span)), n);
        twid.push(w.0);
        twid.push(w.1);
    }
    vec![words_f32(data), words_f32(twid)]
}

/// Scalar reference for one radix-2 exchange stage over `points`.
pub fn apply_exchange_stage_reference(points: &mut [C32], span: usize) {
    let n = points.len();
    for p in 0..n {
        if p & span == 0 {
            let q = p + span;
            let j = p % span;
            let w = twiddle(j * (n / (2 * span)), n);
            let a = points[p];
            let t = cmul_ref(points[q], w);
            points[p] = cadd(a, t);
            points[q] = csub(a, t);
        }
    }
}

/// A complex sample.
pub type C32 = (f32, f32);

fn cmul_ref(a: C32, b: C32) -> C32 {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn cadd(a: C32, b: C32) -> C32 {
    (a.0 + b.0, a.1 + b.1)
}

fn csub(a: C32, b: C32) -> C32 {
    (a.0 - b.0, a.1 - b.1)
}

fn twiddle(k: usize, n: usize) -> C32 {
    let theta = -2.0 * PI * k as f32 / n as f32;
    (theta.cos(), theta.sin())
}

/// Reverses the base-4 digits of `i` within `n = 4^m` points.
pub fn digit_reverse4(i: usize, n: usize) -> usize {
    let mut m = 0;
    let mut nn = n;
    while nn > 1 {
        nn /= 4;
        m += 1;
    }
    let mut r = 0usize;
    let mut x = i;
    for _ in 0..m {
        r = r * 4 + (x & 3);
        x >>= 2;
    }
    r
}

/// One stage's butterfly records: for each butterfly, the four point
/// indices and the three twiddles. `span` is `4^stage`.
#[derive(Debug, Clone)]
pub struct StageLayout {
    /// Point indices `(i0, i1, i2, i3)` per butterfly, in record order.
    pub indices: Vec<[usize; 4]>,
    /// Twiddle words (w1, w2, w3 interleaved re/im) per butterfly.
    pub twiddles: Vec<[f32; 6]>,
}

/// Computes the butterfly layout of one radix-4 DIT stage over `n` points
/// with butterfly `span` (1, 4, 16, ...).
pub fn stage_layout(n: usize, span: usize) -> StageLayout {
    let step = span * 4;
    let mut indices = Vec::with_capacity(n / 4);
    let mut twiddles = Vec::with_capacity(n / 4);
    let mut group = 0;
    while group < n {
        for j in 0..span {
            let i0 = group + j;
            indices.push([i0, i0 + span, i0 + 2 * span, i0 + 3 * span]);
            let base = j * (n / step);
            let w1 = twiddle(base, n);
            let w2 = twiddle(2 * base, n);
            let w3 = twiddle(3 * base, n);
            twiddles.push([w1.0, w1.1, w2.0, w2.1, w3.0, w3.1]);
        }
        group += step;
    }
    StageLayout { indices, twiddles }
}

/// Applies one stage to `points` using the scalar butterfly (reference
/// semantics identical to the kernel).
pub fn apply_stage_reference(points: &mut [C32], layout: &StageLayout) {
    for (idx, tw) in layout.indices.iter().zip(&layout.twiddles) {
        let x0 = points[idx[0]];
        let t1 = cmul_ref(points[idx[1]], (tw[0], tw[1]));
        let t2 = cmul_ref(points[idx[2]], (tw[2], tw[3]));
        let t3 = cmul_ref(points[idx[3]], (tw[4], tw[5]));
        let u0 = cadd(x0, t2);
        let u1 = csub(x0, t2);
        let u2 = cadd(t1, t3);
        let u3 = csub(t1, t3);
        points[idx[0]] = cadd(u0, u2);
        points[idx[2]] = csub(u0, u2);
        points[idx[1]] = (u1.0 + u3.1, u1.1 - u3.0);
        points[idx[3]] = (u1.0 - u3.1, u1.1 + u3.0);
    }
}

/// Full radix-4 FFT reference: digit-reverses the input, then applies all
/// stages. `n` must be a power of four.
pub fn fft_reference(input: &[C32]) -> Vec<C32> {
    let n = input.len();
    assert!(
        n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2),
        "n must be 4^m"
    );
    let mut x: Vec<C32> = (0..n).map(|i| input[digit_reverse4(i, n)]).collect();
    let mut span = 1;
    while span < n {
        let layout = stage_layout(n, span);
        apply_stage_reference(&mut x, &layout);
        span *= 4;
    }
    x
}

/// Naive DFT, for verification.
pub fn dft_reference(input: &[C32]) -> Vec<C32> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = (0f32, 0f32);
            for (j, &x) in input.iter().enumerate() {
                let w = twiddle(k * j, n);
                acc = cadd(acc, cmul_ref(x, w));
            }
            acc
        })
        .collect()
}

/// Builds the split input streams for one stage invocation over `points`
/// (gathering each butterfly's four points) and returns them with the
/// layout used.
pub fn stage_streams(
    points: &[C32],
    span: usize,
    machine: &Machine,
) -> (Vec<Vec<Scalar>>, StageLayout) {
    let layout = stage_layout(points.len(), span);
    let mut data = Vec::with_capacity(layout.indices.len() * DATA_WIDTH as usize);
    let mut twid = Vec::with_capacity(layout.indices.len() * TWIDDLE_WIDTH as usize);
    for (idx, tw) in layout.indices.iter().zip(&layout.twiddles) {
        for &i in idx {
            data.push(points[i].0);
            data.push(points[i].1);
        }
        twid.extend_from_slice(tw);
    }
    let [kd, kt, _] = splits(machine);
    let mut streams = scatter_words(&words_f32(data), DATA_WIDTH, kd);
    streams.extend(scatter_words(&words_f32(twid), TWIDDLE_WIDTH, kt));
    (streams, layout)
}

/// Scatters a stage's kernel outputs back into the point array.
pub fn scatter_stage_outputs(
    outs: &[Vec<Scalar>],
    layout: &StageLayout,
    points: &mut [C32],
    machine: &Machine,
) {
    let [_, _, ko] = splits(machine);
    assert_eq!(outs.len(), ko as usize);
    let flat = gather_words(outs, DATA_WIDTH);
    for (r, idx) in layout.indices.iter().enumerate() {
        for (q, &i) in idx.iter().enumerate() {
            let re = flat[r * DATA_WIDTH as usize + 2 * q].as_f32().expect("f32");
            let im = flat[r * DATA_WIDTH as usize + 2 * q + 1]
                .as_f32()
                .expect("f32");
            points[i] = (re, im);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::XorShift32;
    use stream_ir::{execute, ExecConfig};

    fn sample(n: usize, seed: u32) -> Vec<C32> {
        let mut rng = XorShift32(seed);
        (0..n)
            .map(|_| (rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0))
            .collect()
    }

    fn assert_close(a: &[C32], b: &[C32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.0 - y.0).abs() < tol && (x.1 - y.1).abs() < tol,
                "index {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn reference_matches_dft() {
        for n in [4usize, 16, 64] {
            let input = sample(n, 7);
            let fft = fft_reference(&input);
            let dft = dft_reference(&input);
            assert_close(&fft, &dft, 1e-2 * n as f32);
        }
    }

    #[test]
    fn kernel_stage_matches_reference_stage() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let n = 64;
        let input = sample(n, 13);
        // Digit-reversed order, first stage (span 1).
        let mut pts: Vec<C32> = (0..n).map(|i| input[digit_reverse4(i, n)]).collect();
        let (streams, layout) = stage_streams(&pts, 1, &machine);
        let outs = execute(&k, &[], &streams, &ExecConfig::with_clusters(8)).unwrap();
        let mut got = pts.clone();
        scatter_stage_outputs(&outs, &layout, &mut got, &machine);
        apply_stage_reference(&mut pts, &layout);
        assert_close(&got, &pts, 1e-4);
    }

    #[test]
    fn full_fft_through_kernel_matches_dft() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let n = 64;
        let input = sample(n, 21);
        let mut pts: Vec<C32> = (0..n).map(|i| input[digit_reverse4(i, n)]).collect();
        let mut span = 1;
        while span < n {
            let (streams, layout) = stage_streams(&pts, span, &machine);
            let outs = execute(&k, &[], &streams, &ExecConfig::with_clusters(8)).unwrap();
            let mut next = pts.clone();
            scatter_stage_outputs(&outs, &layout, &mut next, &machine);
            pts = next;
            span *= 4;
        }
        let dft = dft_reference(&input);
        assert_close(&pts, &dft, 0.5);
    }

    #[test]
    fn stats_are_in_the_expected_band() {
        let s = kernel(&Machine::baseline()).stats();
        assert_eq!(s.alu_ops, 34); // 3 cmuls (18) + 16 adds/subs
        assert_eq!(s.srf_accesses, 22); // 8 + 6 reads, 8 writes
        assert_eq!(s.comms, 0);
        assert_eq!(s.sp_accesses, 0);
    }

    #[test]
    fn exchange_stage_matches_reference() {
        let machine = Machine::baseline();
        let n = 8usize; // one point per cluster, C = 8
        let mut pts = sample(n, 33);
        for span in [1usize, 2, 4] {
            let k = exchange_kernel(&machine, span as u32);
            let streams = exchange_stage_streams(&pts, span);
            let outs = execute(&k, &[], &streams, &ExecConfig::with_clusters(8)).unwrap();
            let mut want = pts.clone();
            apply_exchange_stage_reference(&mut want, span);
            let flat = &outs[0];
            for (i, w) in want.iter().enumerate() {
                let gr = flat[2 * i].as_f32().unwrap();
                let gi = flat[2 * i + 1].as_f32().unwrap();
                assert!(
                    (gr - w.0).abs() < 1e-4 && (gi - w.1).abs() < 1e-4,
                    "span {span} pt {i}"
                );
            }
            pts = want;
        }
    }

    #[test]
    fn exchange_stages_compose_to_a_full_fft() {
        // 8 points on 8 clusters: every stage is an exchange stage.
        let machine = Machine::baseline();
        let n = 8usize;
        let input = sample(n, 41);
        let mut pts: Vec<C32> = (0..n).map(|i| input[bit_reverse2(i, n)]).collect();
        let mut span = 1usize;
        while span < n {
            let k = exchange_kernel(&machine, span as u32);
            let streams = exchange_stage_streams(&pts, span);
            let outs = execute(&k, &[], &streams, &ExecConfig::with_clusters(8)).unwrap();
            for i in 0..n {
                pts[i] = (
                    outs[0][2 * i].as_f32().unwrap(),
                    outs[0][2 * i + 1].as_f32().unwrap(),
                );
            }
            span *= 2;
        }
        let want = dft_reference(&input);
        for i in 0..n {
            assert!(
                (pts[i].0 - want[i].0).abs() < 1e-2 && (pts[i].1 - want[i].1).abs() < 1e-2,
                "bin {i}: {:?} vs {:?}",
                pts[i],
                want[i]
            );
        }
    }

    #[test]
    fn exchange_kernel_is_comm_bound_structurally() {
        let machine = Machine::baseline();
        let k = exchange_kernel(&machine, 1);
        let s = k.stats();
        assert_eq!(s.comms, 2);
        assert!(s.alu_ops >= 14 && s.alu_ops <= 24, "alu = {}", s.alu_ops);
    }

    #[test]
    fn bit_reverse2_is_involution() {
        for n in [8usize, 64, 1024] {
            for i in 0..n {
                assert_eq!(bit_reverse2(bit_reverse2(i, n), n), i);
            }
        }
    }

    #[test]
    fn digit_reverse_is_involution() {
        for n in [16usize, 64, 256, 1024] {
            for i in 0..n {
                assert_eq!(digit_reverse4(digit_reverse4(i, n), n), i);
            }
        }
    }

    #[test]
    fn split_plan_fits_streambuffers() {
        for n in [2u32, 5, 10, 14, 16] {
            let m = Machine::paper(stream_vlsi::Shape::new(8, n));
            let s = splits(&m);
            assert!(s.iter().sum::<u32>() <= m.derived().cluster_sbs);
        }
    }
}
