//! Noise: two-octave Perlin gradient noise driving a procedural marble
//! shader (Table 4) — the perfectly data-parallel kernel whose intercluster
//! speedup is linear in the paper's Figure 14.
//!
//! Per sample and octave: integer lattice hashing (wrapping integer
//! arithmetic), gradient lookup from a scratchpad table, quintic fade, and
//! bilinear gradient interpolation; the octaves combine into a
//! triangle-wave marble stripe.

use crate::util::{words_f32, XorShift32};
use stream_ir::{Kernel, KernelBuilder, Ty, ValueId};
use stream_machine::Machine;

/// Number of gradients in the scratchpad table.
pub const GRADIENTS: usize = 8;
/// Marble stripe frequency (the `x` coefficient added to the noise).
pub const STRIPE: f32 = 0.15;
/// Noise amplitude in the marble argument.
pub const AMP: f32 = 1.5;
/// Second-octave weight.
pub const OCTAVE2: f32 = 0.5;
/// Second-octave coordinate transform: `p2 = 2p + offset`.
pub const OCT2_OFFSET: (f32, f32) = (17.0, 31.0);

/// The gradient table, as interleaved `(gx, gy)` scratchpad words.
pub fn gradient_table() -> Vec<f32> {
    const D: f32 = std::f32::consts::FRAC_1_SQRT_2;
    let dirs: [(f32, f32); GRADIENTS] = [
        (1.0, 0.0),
        (D, D),
        (0.0, 1.0),
        (-D, D),
        (-1.0, 0.0),
        (-D, -D),
        (0.0, -1.0),
        (D, -D),
    ];
    dirs.iter().flat_map(|&(x, y)| [x, y]).collect()
}

/// Scratchpad initialization words for [`kernel`].
pub fn sp_init() -> Vec<stream_ir::Scalar> {
    words_f32(gradient_table())
}

const HASH_MUL_1: i32 = 0x27d4_eb2fu32 as i32;
const HASH_MUL_2: i32 = 0x85eb_ca6bu32 as i32;

/// Emits one octave of Perlin noise at `(x, y)`.
fn emit_perlin(b: &mut KernelBuilder, x: ValueId, y: ValueId) -> ValueId {
    let xf = b.floor(x);
    let yf = b.floor(y);
    let xi = b.ftoi(xf);
    let yi = b.ftoi(yf);
    let fx = b.sub(x, xf);
    let fy = b.sub(y, yf);
    let one = b.const_f(1.0);
    let fxm1 = b.sub(fx, one);
    let fym1 = b.sub(fy, one);

    let m1 = b.const_i(HASH_MUL_1);
    let m2 = b.const_i(HASH_MUL_2);
    let fifteen = b.const_i(15);
    let gmask = b.const_i(GRADIENTS as i32 - 1);

    let corner_dot = |b: &mut KernelBuilder, dx: i32, dy: i32| -> ValueId {
        let cx = if dx == 0 {
            xi
        } else {
            let d = b.const_i(dx);
            b.add(xi, d)
        };
        let cy = if dy == 0 {
            yi
        } else {
            let d = b.const_i(dy);
            b.add(yi, d)
        };
        let hx = b.mul(cx, m1);
        let hy = b.mul(cy, m2);
        let h0 = b.xor(hx, hy);
        let h1 = b.shr(h0, fifteen);
        let h2 = b.xor(h0, h1);
        let g = b.and(h2, gmask);
        let two = b.const_i(2);
        let base = b.mul(g, two);
        let one_i = b.const_i(1);
        let base1 = b.add(base, one_i);
        let gx = b.sp_read(base, Ty::F32);
        let gy = b.sp_read(base1, Ty::F32);
        let px = if dx == 0 { fx } else { fxm1 };
        let py = if dy == 0 { fy } else { fym1 };
        let tx = b.mul(gx, px);
        let ty = b.mul(gy, py);
        b.add(tx, ty)
    };

    let d00 = corner_dot(b, 0, 0);
    let d10 = corner_dot(b, 1, 0);
    let d01 = corner_dot(b, 0, 1);
    let d11 = corner_dot(b, 1, 1);

    // Quintic fade: t^3 (t (6t - 15) + 10).
    let fade = |b: &mut KernelBuilder, t: ValueId| -> ValueId {
        let six = b.const_f(6.0);
        let fifteen_f = b.const_f(15.0);
        let ten = b.const_f(10.0);
        let t6 = b.mul(t, six);
        let t6m15 = b.sub(t6, fifteen_f);
        let inner = b.mul(t, t6m15);
        let poly = b.add(inner, ten);
        let t2 = b.mul(t, t);
        let t3 = b.mul(t2, t);
        b.mul(t3, poly)
    };
    let u = fade(b, fx);
    let v = fade(b, fy);

    let lerp = |b: &mut KernelBuilder, a: ValueId, c: ValueId, t: ValueId| -> ValueId {
        let d = b.sub(c, a);
        let td = b.mul(t, d);
        b.add(a, td)
    };
    let nx0 = lerp(b, d00, d10, u);
    let nx1 = lerp(b, d01, d11, u);
    lerp(b, nx0, nx1, v)
}

/// Builds the Noise kernel. The structure is machine-independent (no COMM);
/// `machine` is accepted for interface uniformity with the other kernels.
pub fn kernel(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("noise");
    b.require_sp(2 * GRADIENTS as u32);

    let xs = b.in_stream(Ty::F32);
    let ys = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);

    let x = b.read(xs);
    let y = b.read(ys);

    // Octave 1 at the sample point; octave 2 at 2p + offset.
    let n1 = emit_perlin(&mut b, x, y);
    let two_f = b.const_f(2.0);
    let offx = b.const_f(OCT2_OFFSET.0);
    let offy = b.const_f(OCT2_OFFSET.1);
    let x2a = b.mul(x, two_f);
    let x2 = b.add(x2a, offx);
    let y2a = b.mul(y, two_f);
    let y2 = b.add(y2a, offy);
    let n2 = emit_perlin(&mut b, x2, y2);
    let w2 = b.const_f(OCTAVE2);
    let n2w = b.mul(n2, w2);
    let noise = b.add(n1, n2w);

    // Marble: triangle wave of (stripe * x + amp * noise).
    let stripe = b.const_f(STRIPE);
    let amp = b.const_f(AMP);
    let sx = b.mul(stripe, x);
    let an = b.mul(amp, noise);
    let m = b.add(sx, an);
    let mf = b.floor(m);
    let frac = b.sub(m, mf);
    let fr2 = b.mul(frac, two_f);
    let one = b.const_f(1.0);
    let fr2m1 = b.sub(fr2, one);
    let tri = b.abs(fr2m1);
    b.write(out, tri);

    b.finish().expect("noise kernel is structurally valid")
}

fn perlin_ref(x: f32, y: f32, grads: &[f32]) -> f32 {
    let corner = |xi: i32, yi: i32, px: f32, py: f32| -> f32 {
        let hx = xi.wrapping_mul(HASH_MUL_1);
        let hy = yi.wrapping_mul(HASH_MUL_2);
        let h0 = hx ^ hy;
        let h = h0 ^ (h0 >> 15);
        let g = (h & (GRADIENTS as i32 - 1)) as usize;
        grads[2 * g] * px + grads[2 * g + 1] * py
    };
    let fade = |t: f32| t * t * t * (t * (6.0 * t - 15.0) + 10.0);
    let lerp = |a: f32, b: f32, t: f32| a + t * (b - a);
    let (xf, yf) = (x.floor(), y.floor());
    let (xi, yi) = (xf as i32, yf as i32);
    let (fx, fy) = (x - xf, y - yf);
    let d00 = corner(xi, yi, fx, fy);
    let d10 = corner(xi.wrapping_add(1), yi, fx - 1.0, fy);
    let d01 = corner(xi, yi.wrapping_add(1), fx, fy - 1.0);
    let d11 = corner(xi.wrapping_add(1), yi.wrapping_add(1), fx - 1.0, fy - 1.0);
    let (u, v) = (fade(fx), fade(fy));
    lerp(lerp(d00, d10, u), lerp(d01, d11, u), v)
}

/// Scalar reference computing exactly what [`kernel`] computes.
pub fn reference(xs: &[f32], ys: &[f32]) -> Vec<f32> {
    let grads = gradient_table();
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let n1 = perlin_ref(x, y, &grads);
            let n2 = perlin_ref(x * 2.0 + OCT2_OFFSET.0, y * 2.0 + OCT2_OFFSET.1, &grads);
            let noise = n1 + OCTAVE2 * n2;
            let m = STRIPE * x + AMP * noise;
            let frac = m - m.floor();
            (2.0 * frac - 1.0).abs()
        })
        .collect()
}

/// Deterministic sample coordinates.
pub fn sample_coords(count: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let mut rng = XorShift32(seed);
    let xs = (0..count).map(|_| rng.next_f32() * 64.0).collect();
    let ys = (0..count).map(|_| rng.next_f32() * 64.0).collect();
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_f32;
    use stream_ir::{execute_with, ExecConfig, ExecOptions};

    fn run(xs: &[f32], ys: &[f32], clusters: usize) -> Vec<f32> {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let sp = sp_init();
        let opts = ExecOptions {
            params: &[],
            sp_init: Some(&sp),
            iterations: None,
        };
        let outs = execute_with(
            &k,
            &opts,
            &[words_f32(xs.to_vec()), words_f32(ys.to_vec())],
            &ExecConfig::with_clusters(clusters),
        )
        .unwrap();
        to_f32(&outs[0])
    }

    #[test]
    fn matches_reference() {
        let (xs, ys) = sample_coords(64, 17);
        let got = run(&xs, &ys, 8);
        let want = reference(&xs, &ys);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-3, "index {i}: {a} vs {b}");
        }
    }

    #[test]
    fn output_is_in_unit_range() {
        let (xs, ys) = sample_coords(128, 23);
        for v in run(&xs, &ys, 8) {
            assert!((0.0..=1.0).contains(&v), "marble value {v}");
        }
    }

    #[test]
    fn noise_varies() {
        let (xs, ys) = sample_coords(64, 29);
        let vals = run(&xs, &ys, 8);
        let min = vals.iter().cloned().fold(f32::MAX, f32::min);
        let max = vals.iter().cloned().fold(f32::MIN, f32::max);
        assert!(max - min > 0.2, "marble should vary: {min}..{max}");
    }

    #[test]
    fn stats_are_in_the_expected_band() {
        let s = kernel(&Machine::baseline()).stats();
        // Two octaves of Perlin: ALU-heavy, scratchpad gradient lookups.
        assert!(s.alu_ops >= 120 && s.alu_ops <= 190, "alu = {}", s.alu_ops);
        assert_eq!(s.srf_accesses, 3);
        assert_eq!(s.comms, 0);
        assert_eq!(s.sp_accesses, 16);
    }

    #[test]
    fn deterministic_across_cluster_counts() {
        let (xs, ys) = sample_coords(32, 31);
        assert_eq!(run(&xs, &ys, 4), run(&xs, &ys, 16));
    }
}
