//! Update: the QRD matrix block-update kernel (Table 4, floating point).
//!
//! One Householder update step `a <- a - tau * scale_j * (v^T a) * v`
//! applied to one matrix column per SIMD iteration. Columns span all `C`
//! clusters (each cluster holds an 8-row segment), so the inner product
//! `v^T a` is completed with a butterfly all-reduce over the intercluster
//! switch — the paper's Update kernel is likewise dominated by intercluster
//! communication. A per-column scale table lives in the scratchpad.

use crate::split::{gather_words, scatter_words, split_plan};
use crate::util::{xor_cluster, XorShift32};
use stream_ir::{Kernel, KernelBuilder, Scalar, Ty, ValueId};
use stream_machine::Machine;

/// Rows of a column segment held by one cluster.
pub const SEG: usize = 8;
/// Entries in the scratchpad scale table.
pub const SCALE_TABLE: usize = 16;

/// Streambuffer split plan `(a_in, v_in, a_out)` for `machine`.
pub fn splits(machine: &Machine) -> [u32; 3] {
    let widths = [SEG as u32, SEG as u32, SEG as u32];
    let plan = split_plan(&widths, machine.derived().cluster_sbs);
    [plan[0], plan[1], plan[2]]
}

/// Builds the Update kernel for `machine`.
pub fn kernel(machine: &Machine) -> Kernel {
    let c = machine.clusters();
    let [ka, kv, ko] = splits(machine);
    let mut b = KernelBuilder::new("update");
    b.require_sp(SCALE_TABLE as u32);

    let a_streams: Vec<_> = (0..ka).map(|_| b.in_stream(Ty::F32)).collect();
    let v_streams: Vec<_> = (0..kv).map(|_| b.in_stream(Ty::F32)).collect();
    let out_streams: Vec<_> = (0..ko).map(|_| b.out_stream(Ty::F32)).collect();
    let tau = b.param(Ty::F32);

    // Read the column and Householder segments (round-robin across splits).
    let a: Vec<ValueId> = (0..SEG)
        .map(|j| b.read(a_streams[j % ka as usize]))
        .collect();
    let v: Vec<ValueId> = (0..SEG)
        .map(|j| b.read(v_streams[j % kv as usize]))
        .collect();

    // Partial inner product over this cluster's rows.
    let mut dot = b.mul(a[0], v[0]);
    for j in 1..SEG {
        let t = b.mul(a[j], v[j]);
        dot = b.add(dot, t);
    }

    // Butterfly all-reduce across clusters.
    let cid = b.cluster_id();
    let mut bit = 1i32;
    while (bit as u32) < c {
        let partner = xor_cluster(&mut b, cid, bit);
        let other = b.comm(dot, partner);
        dot = b.add(dot, other);
        bit <<= 1;
    }

    // Per-column pivot scale from the scratchpad table.
    let iter = b.iter_index();
    let mask = b.const_i(SCALE_TABLE as i32 - 1);
    let addr = b.and(iter, mask);
    let scale = b.sp_read(addr, Ty::F32);

    let ts = b.mul(tau, scale);
    let s = b.mul(ts, dot);

    // a' = a - s * v.
    for j in 0..SEG {
        let sv = b.mul(s, v[j]);
        let o = b.sub(a[j], sv);
        b.write(out_streams[j % ko as usize], o);
    }

    b.finish().expect("update kernel is structurally valid")
}

/// Scatters logical column data (`SEG * C` rows per column, column-major)
/// into the kernel's split input streams. `a` and `v` are flat logical
/// streams of `SEG`-word records.
pub fn input_streams(a: &[Scalar], v: &[Scalar], machine: &Machine) -> Vec<Vec<Scalar>> {
    let [ka, kv, _] = splits(machine);
    let mut streams = scatter_words(a, SEG as u32, ka);
    streams.extend(scatter_words(v, SEG as u32, kv));
    streams
}

/// Gathers the kernel's split outputs back into a flat logical stream.
pub fn gather_output(outs: &[Vec<Scalar>], machine: &Machine) -> Vec<Scalar> {
    let [_, _, ko] = splits(machine);
    assert_eq!(outs.len(), ko as usize);
    gather_words(outs, SEG as u32)
}

/// Scalar reference: applies the update to `columns` columns of height
/// `SEG * clusters`, with per-column scales cycling through `scale_table`.
pub fn reference(
    a: &[f32],
    v: &[f32],
    tau: f32,
    scale_table: &[f32],
    clusters: usize,
    columns: usize,
) -> Vec<f32> {
    let height = SEG * clusters;
    assert_eq!(a.len(), height * columns);
    assert_eq!(v.len(), height * columns);
    let mut out = vec![0f32; a.len()];
    for j in 0..columns {
        let col = &a[j * height..(j + 1) * height];
        let vcol = &v[j * height..(j + 1) * height];
        // Match the kernel's reduction order: per-cluster partial dots in
        // row order, then a butterfly sum. Since f32 addition is not
        // associative, reproduce the butterfly exactly.
        let mut partial: Vec<f32> = (0..clusters)
            .map(|c| {
                let base = c * SEG;
                let mut d = col[base] * vcol[base];
                for r in 1..SEG {
                    d += col[base + r] * vcol[base + r];
                }
                d
            })
            .collect();
        let mut bit = 1usize;
        while bit < clusters {
            let snapshot = partial.clone();
            for (c, p) in partial.iter_mut().enumerate() {
                *p = snapshot[c] + snapshot[c ^ bit];
            }
            bit <<= 1;
        }
        for c in 0..clusters {
            let s = tau * scale_table[j % scale_table.len()] * partial[c];
            for r in 0..SEG {
                let i = j * height + c * SEG + r;
                out[i] = a[i] - s * v[i];
            }
        }
    }
    out
}

/// Deterministic sample data: `(a, v, tau, scale_table)` for `columns`
/// columns on a `clusters`-wide machine.
pub fn sample_inputs(
    columns: usize,
    clusters: usize,
    seed: u32,
) -> (Vec<f32>, Vec<f32>, f32, Vec<f32>) {
    let mut rng = XorShift32(seed);
    let n = SEG * clusters * columns;
    let a: Vec<f32> = (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
    let v: Vec<f32> = (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
    let scale: Vec<f32> = (0..SCALE_TABLE).map(|_| 0.5 + rng.next_f32()).collect();
    (a, v, 0.75, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_f32;
    use crate::util::words_f32;
    use stream_ir::{execute_with, ExecConfig, ExecOptions};

    fn run(clusters: u32, columns: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
        let machine = Machine::paper(stream_vlsi::Shape::new(clusters, 5));
        let k = kernel(&machine);
        let (a, v, tau, scale) = sample_inputs(columns, clusters as usize, seed);
        let inputs = input_streams(&words_f32(a.clone()), &words_f32(v.clone()), &machine);
        let sp: Vec<Scalar> = words_f32(scale.clone());
        let opts = ExecOptions {
            params: &[Scalar::F32(tau)],
            sp_init: Some(&sp),
            iterations: None,
        };
        let outs = execute_with(
            &k,
            &opts,
            &inputs,
            &ExecConfig::with_clusters(clusters as usize),
        )
        .unwrap();
        let [_, _, ko] = splits(&machine);
        let got = to_f32(&gather_output(&outs[..ko as usize], &machine));
        let want = reference(&a, &v, tau, &scale, clusters as usize, columns);
        (got, want)
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_c8() {
        let (got, want) = run(8, 16, 3);
        assert_close(&got, &want);
    }

    #[test]
    fn matches_reference_c16() {
        let (got, want) = run(16, 8, 5);
        assert_close(&got, &want);
    }

    #[test]
    fn zero_tau_is_identity() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let (a, v, _, scale) = sample_inputs(4, 8, 9);
        let inputs = input_streams(&words_f32(a.clone()), &words_f32(v), &machine);
        let sp = words_f32(scale);
        let opts = ExecOptions {
            params: &[Scalar::F32(0.0)],
            sp_init: Some(&sp),
            iterations: None,
        };
        let outs = execute_with(&k, &opts, &inputs, &ExecConfig::with_clusters(8)).unwrap();
        let [_, _, ko] = splits(&machine);
        let got = to_f32(&gather_output(&outs[..ko as usize], &machine));
        assert_close(&got, &a);
    }

    #[test]
    fn comm_count_grows_with_clusters() {
        let k8 = kernel(&Machine::paper(stream_vlsi::Shape::new(8, 5)));
        let k128 = kernel(&Machine::paper(stream_vlsi::Shape::new(128, 5)));
        assert_eq!(k8.stats().comms, 3); // log2(8)
        assert_eq!(k128.stats().comms, 7); // log2(128)
    }

    #[test]
    fn stats_are_in_the_expected_band() {
        let s = kernel(&Machine::baseline()).stats();
        assert!(s.alu_ops >= 30 && s.alu_ops <= 55, "alu = {}", s.alu_ops);
        assert_eq!(s.sp_accesses, 1);
        assert_eq!(s.srf_accesses, 24); // 8 + 8 reads, 8 writes
    }

    #[test]
    fn split_plan_uses_available_sbs() {
        let machine = Machine::baseline(); // 7 cluster SBs
        let s = splits(&machine);
        assert_eq!(s.iter().sum::<u32>(), 7);
    }
}
