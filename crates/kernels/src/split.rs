//! Record splitting across streambuffers.
//!
//! Each streambuffer delivers one word per cycle, so a kernel reading a
//! `W`-word record from a single stream serializes `W` pops per iteration.
//! The paper's kernels split wide records across multiple streams by hand
//! (Section 3.1.1, footnote: "splitting multi-word-record streams into
//! multiple streams was done by hand to optimize performance"). This module
//! automates that: a [`split_plan`] distributes the cluster's streambuffers
//! across a kernel's logical streams to minimize the longest per-stream pop
//! chain, and [`scatter_words`]/[`gather_words`] convert between the logical
//! record layout and the split stream layout.

use stream_ir::Scalar;

/// Given the logical record widths of a kernel's streams (inputs and
/// outputs together) and the number of cluster streambuffers available,
/// returns how many physical streams to give each logical stream.
///
/// Every logical stream gets at least one; remaining buffers go wherever the
/// per-iteration pop chain is longest.
///
/// # Panics
///
/// Panics if `budget < widths.len()` (each logical stream needs a
/// streambuffer) or any width is zero.
pub fn split_plan(widths: &[u32], budget: u32) -> Vec<u32> {
    assert!(
        budget as usize >= widths.len(),
        "need at least one streambuffer per logical stream ({} > {budget})",
        widths.len()
    );
    assert!(
        widths.iter().all(|&w| w > 0),
        "stream widths must be positive"
    );
    let mut splits = vec![1u32; widths.len()];
    let mut spare = budget - widths.len() as u32;
    while spare > 0 {
        let chain = |i: usize| widths[i].div_ceil(splits[i]);
        let Some(worst) = (0..widths.len())
            .filter(|&i| chain(i) > 1)
            .max_by_key(|&i| chain(i))
        else {
            break; // every chain is already one pop long
        };
        splits[worst] += 1;
        spare -= 1;
    }
    splits
}

/// The longest per-iteration pop chain a plan leaves (the streambuffer
/// contribution to the initiation interval).
pub fn max_chain(widths: &[u32], splits: &[u32]) -> u32 {
    widths
        .iter()
        .zip(splits)
        .map(|(&w, &k)| w.div_ceil(k))
        .max()
        .unwrap_or(0)
}

/// Scatters a flat logical stream (records of `width` words) into `k`
/// physical streams: word `j` of each record goes to stream `j % k`.
pub fn scatter_words(words: &[Scalar], width: u32, k: u32) -> Vec<Vec<Scalar>> {
    let (width, k) = (width as usize, k as usize);
    assert!(width > 0 && k > 0);
    assert_eq!(words.len() % width, 0, "ragged logical stream");
    let mut out = vec![Vec::with_capacity(words.len() / k + 1); k];
    for record in words.chunks(width) {
        for (j, &w) in record.iter().enumerate() {
            out[j % k].push(w);
        }
    }
    out
}

/// Gathers `k` physical streams back into flat records of `width` words —
/// the inverse of [`scatter_words`].
///
/// # Panics
///
/// Panics if the physical streams are inconsistent with `width`.
pub fn gather_words(streams: &[Vec<Scalar>], width: u32) -> Vec<Scalar> {
    let width = width as usize;
    let k = streams.len();
    assert!(k > 0);
    let records: usize = streams.iter().map(Vec::len).sum::<usize>() / width;
    let mut cursors = vec![0usize; k];
    let mut out = Vec::with_capacity(records * width);
    for _ in 0..records {
        for j in 0..width {
            let s = j % k;
            out.push(streams[s][cursors[s]]);
            cursors[s] += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::words_i32;

    #[test]
    fn plan_gives_everyone_one() {
        let p = split_plan(&[1, 1, 1], 7);
        assert_eq!(p, vec![1, 1, 1]); // chains already 1, spare unused
    }

    #[test]
    fn plan_attacks_longest_chain() {
        // widths 8 and 2 with 5 buffers: 8 -> 4 buffers (chain 2),
        // 2 -> 1 buffer (chain 2).
        let p = split_plan(&[8, 2], 5);
        assert_eq!(p.iter().sum::<u32>(), 5);
        assert!(max_chain(&[8, 2], &p) <= 2);
    }

    #[test]
    fn plan_respects_budget() {
        let widths = [8, 6, 8];
        for budget in 3..=16 {
            let p = split_plan(&widths, budget);
            assert!(p.iter().sum::<u32>() <= budget);
            assert!(p.iter().all(|&k| k >= 1));
        }
        // More budget never hurts the chain.
        let c7 = max_chain(&widths, &split_plan(&widths, 7));
        let c10 = max_chain(&widths, &split_plan(&widths, 10));
        assert!(c10 <= c7);
    }

    #[test]
    #[should_panic(expected = "streambuffer per logical stream")]
    fn plan_rejects_starved_budget() {
        let _ = split_plan(&[1, 1, 1], 2);
    }

    #[test]
    fn scatter_gather_round_trips() {
        let words = words_i32(0..24); // 4 records of width 6
        for k in 1..=6 {
            let streams = scatter_words(&words, 6, k);
            assert_eq!(streams.len(), k as usize);
            let back = gather_words(&streams, 6);
            assert_eq!(back, words, "k = {k}");
        }
    }

    #[test]
    fn scatter_layout_is_round_robin() {
        let words = words_i32(0..8); // 2 records of width 4
        let streams = scatter_words(&words, 4, 2);
        assert_eq!(crate::util::to_i32(&streams[0]), vec![0, 2, 4, 6]);
        assert_eq!(crate::util::to_i32(&streams[1]), vec![1, 3, 5, 7]);
    }
}
