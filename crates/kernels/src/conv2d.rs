//! Conv2d: dense 3x3 stencil convolution (extension workload, f32).
//!
//! Three image rows stream in (one pixel column per cluster, one word per
//! record): the row above, the center row, and the row below. Each cluster
//! forms the three *weight-column* partial sums over its own pixels, then
//! fetches the left-column sum from its left neighbor and the right-column
//! sum from its right neighbor over the intercluster switch, so the whole
//! 3x3 window costs just two COMMs. Columns wrap within a SIMD strip.
//!
//! Deliberately the lightest kernel in the suite (~17 ALU ops, 2 comms, 4
//! SRF accesses per element): where Convolve and FFT are ALU- and
//! switch-heavy, Conv2d is fill/drain- and stream-dominated, so its best
//! unroll factor and strip batching differ — exactly the contrast the
//! auto-tuner needs in its target set.

use crate::util::{to_f32, words_f32, wrap_cluster, XorShift32};
use stream_ir::{Kernel, KernelBuilder, Scalar, Ty, ValueId};
use stream_machine::Machine;

/// A 3x3 stencil, row-major: `w[dr][dc]` weights pixel `(r+dr-1, c+dc-1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// The nine taps, rows top-to-bottom, columns left-to-right.
    pub w: [[f32; 3]; 3],
}

impl Weights {
    /// The separable 3x3 binomial smoothing stencil (taps sum to one, so a
    /// constant image is a fixed point).
    pub fn smoothing() -> Self {
        Self {
            w: [
                [0.0625, 0.125, 0.0625],
                [0.125, 0.25, 0.125],
                [0.0625, 0.125, 0.0625],
            ],
        }
    }

    /// A sharpening stencil (identity plus scaled Laplacian).
    pub fn sharpen() -> Self {
        Self {
            w: [[0.0, -0.25, 0.0], [-0.25, 2.0, -0.25], [0.0, -0.25, 0.0]],
        }
    }
}

/// Builds the Conv2d kernel for `machine`. Stencil weights are uniform
/// scalar parameters — pass [`params`] at execution.
pub fn kernel(machine: &Machine) -> Kernel {
    let c = machine.clusters();
    let mut b = KernelBuilder::new("conv2d");

    let top = b.in_stream(Ty::F32);
    let mid = b.in_stream(Ty::F32);
    let bot = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);

    // w[dr][dc] as params, row-major — matches `params`.
    let w: Vec<Vec<ValueId>> = (0..3)
        .map(|_| (0..3).map(|_| b.param(Ty::F32)).collect())
        .collect();

    let px = [b.read(top), b.read(mid), b.read(bot)];

    // Weight-column partial sums over this cluster's own pixel column:
    // t[j] = w[0][j]*top + w[1][j]*mid + w[2][j]*bot.
    let t: Vec<ValueId> = (0..3)
        .map(|j| {
            let mut acc = b.mul(w[0][j], px[0]);
            for dr in 1..3usize {
                let term = b.mul(w[dr][j], px[dr]);
                acc = b.add(acc, term);
            }
            acc
        })
        .collect();

    // out[c] = t0[c-1] + t1[c] + t2[c+1], neighbors over the switch.
    let cid = b.cluster_id();
    let left = wrap_cluster(&mut b, cid, -1, c);
    let right = wrap_cluster(&mut b, cid, 1, c);
    let tl = b.comm(t[0], left);
    let tr = b.comm(t[2], right);
    let s = b.add(tl, t[1]);
    let o = b.add(s, tr);

    b.write(out, o);
    b.finish().expect("conv2d kernel is structurally valid")
}

/// The kernel's parameter vector for `weights` (row-major taps).
pub fn params(weights: &Weights) -> Vec<Scalar> {
    weights
        .w
        .iter()
        .flat_map(|row| row.iter().map(|&v| Scalar::F32(v)))
        .collect()
}

/// Scalar reference with the kernel's strip-wrapped column semantics and
/// accumulation order.
pub fn reference(rows: &[Vec<f32>; 3], weights: &Weights, clusters: usize) -> Vec<f32> {
    let cols = rows[0].len();
    assert!(cols.is_multiple_of(clusters));
    let strips = cols / clusters;
    // Weight-column partial sums, in the kernel's fold order.
    let mut t = [vec![0f32; cols], vec![0f32; cols], vec![0f32; cols]];
    for col in 0..cols {
        for j in 0..3usize {
            let mut acc = weights.w[0][j] * rows[0][col];
            for dr in 1..3usize {
                acc += weights.w[dr][j] * rows[dr][col];
            }
            t[j][col] = acc;
        }
    }
    let mut out = vec![0f32; cols];
    for s in 0..strips {
        for c in 0..clusters {
            let col = s * clusters + c;
            let at = |j: usize, dc: i32| -> f32 {
                let nb = (c as i32 + dc).rem_euclid(clusters as i32) as usize;
                t[j][s * clusters + nb]
            };
            out[col] = (at(0, -1) + at(1, 0)) + at(2, 1);
        }
    }
    out
}

/// Deterministic sample rows of pixel data (above, center, below).
pub fn sample_rows(columns: usize, seed: u32) -> [Vec<f32>; 3] {
    let mut rng = XorShift32(seed);
    std::array::from_fn(|_| (0..columns).map(|_| rng.next_f32() * 255.0).collect())
}

/// Packs reference-format rows into the kernel's three input streams.
pub fn input_streams(rows: &[Vec<f32>; 3]) -> Vec<Vec<Scalar>> {
    rows.iter().map(|r| words_f32(r.iter().copied())).collect()
}

/// Convenience for tests and the tuner: executes the kernel on `rows` and
/// returns the stencil output as f32.
pub fn run(kernel: &Kernel, rows: &[Vec<f32>; 3], weights: &Weights, clusters: usize) -> Vec<f32> {
    let outs = stream_ir::execute(
        kernel,
        &params(weights),
        &input_streams(rows),
        &stream_ir::ExecConfig::with_clusters(clusters),
    )
    .expect("conv2d executes");
    to_f32(&outs[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{execute, ExecConfig};

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-3 * (1.0 + y.abs()),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let weights = Weights::sharpen();
        let rows = sample_rows(64, 23);
        let got = run(&k, &rows, &weights, 8);
        assert_close(&got, &reference(&rows, &weights, 8));
    }

    #[test]
    fn constant_image_is_a_smoothing_fixed_point() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let rows: [Vec<f32>; 3] = std::array::from_fn(|_| vec![100.0; 16]);
        let outs = execute(
            &k,
            &params(&Weights::smoothing()),
            &input_streams(&rows),
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        for &v in to_f32(&outs[0]).iter() {
            assert!((v - 100.0).abs() < 1e-3, "smoothed constant = {v}");
        }
    }

    #[test]
    fn stats_are_in_the_expected_band() {
        let machine = Machine::baseline();
        let s = kernel(&machine).stats();
        assert!(s.alu_ops >= 17 && s.alu_ops <= 40, "alu = {}", s.alu_ops);
        assert_eq!(s.srf_accesses, 4); // 3 reads + 1 write
        assert_eq!(s.comms, 2);
        assert_eq!(s.sp_accesses, 0);
    }

    #[test]
    fn matches_reference_on_16_clusters() {
        let machine = Machine::paper(stream_vlsi::Shape::new(16, 5));
        let k = kernel(&machine);
        let weights = Weights::smoothing();
        let rows = sample_rows(64, 7);
        let got = run(&k, &rows, &weights, 16);
        assert_close(&got, &reference(&rows, &weights, 16));
    }
}
