//! The kernel suite — the six kernels of Tables 2 and 4 plus the extension
//! tier — behind one enumeration so the figure generators can sweep it.

use crate::{blocksad, conv2d, convolve, fft, irast, noise, update};
use std::fmt;
use stream_ir::Kernel;
use stream_machine::Machine;

/// The paper's kernel suite (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelId {
    /// Sum-of-absolute-differences (image processing, 16-bit).
    Blocksad,
    /// Separable convolution filter (image processing, 16-bit).
    Convolve,
    /// QRD matrix block update (floating point).
    Update,
    /// Radix-4 FFT butterfly stage (floating point).
    Fft,
    /// Perlin noise for a procedural marble shader (floating point).
    Noise,
    /// Triangle/span rasterizer (16-bit, conditional streams).
    Irast,
    /// Dense 3x3 stencil convolution (extension workload, tuner target).
    Conv2d,
}

impl KernelId {
    /// The six paper kernels in Table 2/4 order, then the extension tier.
    pub const ALL: [KernelId; 7] = [
        KernelId::Blocksad,
        KernelId::Convolve,
        KernelId::Update,
        KernelId::Fft,
        KernelId::Noise,
        KernelId::Irast,
        KernelId::Conv2d,
    ];

    /// The kernel's display name, as the paper spells it.
    pub fn name(&self) -> &'static str {
        match self {
            KernelId::Blocksad => "Blocksad",
            KernelId::Convolve => "Convolve",
            KernelId::Update => "Update",
            KernelId::Fft => "FFT",
            KernelId::Noise => "Noise",
            KernelId::Irast => "Irast",
            KernelId::Conv2d => "Conv2d",
        }
    }

    /// The Table 4 description.
    pub fn description(&self) -> &'static str {
        match self {
            KernelId::Blocksad => "sum-of-absolute-differences kernel for image processing",
            KernelId::Convolve => "convolution filter for image processing",
            KernelId::Update => "matrix block update for QRD",
            KernelId::Fft => "radix-4 fast Fourier transform",
            KernelId::Noise => "Perlin noise function used in procedural marble shader",
            KernelId::Irast => "triangle rasterizer",
            KernelId::Conv2d => "dense 3x3 stencil convolution (extension tier)",
        }
    }

    /// Builds this kernel for `machine` (kernels are recompiled per
    /// configuration: COMM index arithmetic and stream splitting depend on
    /// the machine).
    pub fn build(&self, machine: &Machine) -> Kernel {
        match self {
            KernelId::Blocksad => blocksad::kernel(machine),
            KernelId::Convolve => convolve::kernel(machine),
            KernelId::Update => update::kernel(machine),
            KernelId::Fft => fft::kernel(machine),
            KernelId::Noise => noise::kernel(machine),
            KernelId::Irast => irast::kernel(machine),
            KernelId::Conv2d => conv2d::kernel(machine),
        }
    }

    /// The paper's Table 2 row `(alu_ops, srf, comm, sp)` for comparison,
    /// when the kernel appears there.
    pub fn paper_table2(&self) -> Option<(u32, u32, u32, u32)> {
        match self {
            KernelId::Blocksad => Some((59, 28, 10, 4)),
            KernelId::Convolve => Some((133, 14, 5, 2)),
            KernelId::Update => Some((61, 4, 16, 32)),
            KernelId::Fft => Some((145, 64, 40, 72)),
            // DCT appears in the paper's Table 2 instead of Noise/Irast;
            // Conv2d is an extension beyond the paper's suite.
            KernelId::Noise | KernelId::Irast | KernelId::Conv2d => None,
        }
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build_on_all_paper_machines() {
        for &c in &[8u32, 16, 32, 64, 128] {
            for &n in &[2u32, 5, 10, 14] {
                let m = Machine::paper(stream_vlsi::Shape::new(c, n));
                for id in KernelId::ALL {
                    let k = id.build(&m);
                    assert!(k.stats().alu_ops > 0, "{id} on C={c} N={n} has no ALU work");
                }
            }
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = KernelId::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["Blocksad", "Convolve", "Update", "FFT", "Noise", "Irast", "Conv2d"]
        );
    }

    #[test]
    fn table2_rows_exist_for_measured_kernels() {
        assert!(KernelId::Blocksad.paper_table2().is_some());
        assert!(KernelId::Fft.paper_table2().is_some());
        assert!(KernelId::Noise.paper_table2().is_none());
    }
}
