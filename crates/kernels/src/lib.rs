#![warn(missing_docs)]
//! The paper's media-processing kernel suite (Tables 2 and 4), written
//! against the `stream-ir` KernelC-equivalent builder.
//!
//! Every kernel is a *real computation* with a scalar reference
//! implementation verified bit-for-bit (integer kernels) or to float
//! tolerance: [`blocksad`] (stereo SAD with intercluster neighbor
//! exchange), [`convolve`] (separable 7x7 filter plus Laplacian),
//! [`update`] (Householder block update with a butterfly all-reduce),
//! [`fft`] (radix-4 DIT butterfly stage), [`noise`] (Perlin marble
//! shader), and [`irast`] (span rasterization through conditional
//! streams), plus the extension tier beyond the paper's suite:
//! [`conv2d`] (dense 3x3 stencil with neighbor-column exchange).
//!
//! Kernels are built *per machine*, mirroring the paper's per-configuration
//! recompilation: COMM index arithmetic depends on the cluster count, and
//! wide records are split across the available streambuffers (module
//! [`split`]) exactly as the paper's hand optimization did.
//!
//! # Examples
//!
//! ```
//! use stream_kernels::KernelId;
//! use stream_machine::Machine;
//!
//! let machine = Machine::baseline();
//! for id in KernelId::ALL {
//!     let kernel = id.build(&machine);
//!     let stats = kernel.stats(); // a Table 2 row
//!     assert!(stats.alu_ops > 0);
//! }
//! ```

// Kernel construction mirrors the mathematics (basis[k][j], cluster c):
// index loops are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

pub mod blocksad;
pub mod conv2d;
pub mod convolve;
pub mod dct;
pub mod fft;
pub mod irast;
pub mod noise;
pub mod split;
pub mod update;
pub mod util;

mod suite;

pub use suite::KernelId;
