//! Blocksad: sum-of-absolute-differences kernel (Table 4, 16-bit data).
//!
//! The building block of stereo depth extraction: for every pixel column the
//! kernel computes the SAD between co-located 3x3 windows of a left-image
//! and a (disparity-shifted) right-image band, then temporally accumulates
//! over a 4-strip scratchpad ring. Horizontal window neighbors come from
//! adjacent clusters over the intercluster switch, exactly how Imagine's
//! DEPTH kernels shared column data; columns wrap within a SIMD strip.

use crate::util::{words_i32, wrap_cluster, XorShift32};
use stream_ir::{Kernel, KernelBuilder, Scalar, Ty, ValueId};
use stream_machine::Machine;

/// Words of scratchpad the kernel uses (the temporal accumulator ring).
pub const SP_RING: u32 = 4;

/// Builds the Blocksad kernel for `machine` (the COMM index arithmetic is
/// specialized to the cluster count, as Imagine's per-configuration
/// recompilation did).
pub fn kernel(machine: &Machine) -> Kernel {
    let c = machine.clusters();
    let mut b = KernelBuilder::new("blocksad");
    b.require_sp(SP_RING);

    // Three rows per image: y-1, y, y+1; one pixel column per cluster.
    let left: Vec<_> = (0..3).map(|_| b.in_stream(Ty::I32)).collect();
    let right: Vec<_> = (0..3).map(|_| b.in_stream(Ty::I32)).collect();
    let out = b.out_stream(Ty::I32);

    let cid = b.cluster_id();
    let left_nb = wrap_cluster(&mut b, cid, -1, c);
    let right_nb = wrap_cluster(&mut b, cid, 1, c);

    let mut terms: Vec<ValueId> = Vec::new();
    for row in 0..3 {
        let l = b.read(left[row]);
        let r = b.read(right[row]);
        // Own column.
        let d = b.sub(l, r);
        terms.push(b.abs(d));
        // Neighbor columns via the intercluster switch.
        for &nb in &[left_nb, right_nb] {
            let ln = b.comm(l, nb);
            let rn = b.comm(r, nb);
            let dn = b.sub(ln, rn);
            terms.push(b.abs(dn));
        }
    }
    // Sum the nine absolute differences.
    let mut sad = terms[0];
    for &t in &terms[1..] {
        sad = b.add(sad, t);
    }

    // Temporal accumulation over a scratchpad ring: out = sad + sad from
    // four strips ago (zero before the ring fills).
    let iter = b.iter_index();
    let ring_mask = b.const_i(SP_RING as i32 - 1);
    let addr = b.and(iter, ring_mask);
    let prev = b.sp_read(addr, Ty::I32);
    let smoothed = b.add(sad, prev);
    b.sp_write(addr, sad);

    b.write(out, smoothed);
    b.finish().expect("blocksad kernel is structurally valid")
}

/// Scalar reference: the exact values [`kernel`] produces for the same
/// per-row column streams on a `clusters`-wide machine.
pub fn reference(left: &[Vec<i32>; 3], right: &[Vec<i32>; 3], clusters: usize) -> Vec<i32> {
    let cols = left[0].len();
    assert!(cols.is_multiple_of(clusters));
    let strips = cols / clusters;
    let mut raw = vec![0i32; cols];
    let mut out = vec![0i32; cols];
    for t in 0..strips {
        for c in 0..clusters {
            let mut sad = 0i32;
            for row in 0..3 {
                for dc in [0i32, -1, 1] {
                    let nb = (c as i32 + dc).rem_euclid(clusters as i32) as usize;
                    let col = t * clusters + nb;
                    sad += (left[row][col] - right[row][col]).abs();
                }
            }
            let col = t * clusters + c;
            raw[col] = sad;
            let prev = if t >= SP_RING as usize {
                raw[(t - SP_RING as usize) * clusters + c]
            } else {
                0
            };
            out[col] = sad + prev;
        }
    }
    out
}

/// Deterministic sample inputs: three left rows and three right rows of
/// 16-bit pixel values over `columns` columns.
pub fn sample_inputs(columns: usize, seed: u32) -> ([Vec<i32>; 3], [Vec<i32>; 3]) {
    let mut rng = XorShift32(seed);
    let mut row = |_: usize| -> Vec<i32> {
        (0..columns)
            .map(|_| rng.next_below(1 << 16) as i32)
            .collect()
    };
    ([row(0), row(1), row(2)], [row(3), row(4), row(5)])
}

/// Packs the reference-format rows into the kernel's input streams.
pub fn input_streams(left: &[Vec<i32>; 3], right: &[Vec<i32>; 3]) -> Vec<Vec<Scalar>> {
    left.iter()
        .chain(right.iter())
        .map(|r| words_i32(r.iter().copied()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_i32;
    use stream_ir::{execute, ExecConfig};

    #[test]
    fn matches_reference() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let (left, right) = sample_inputs(64, 7);
        let outs = execute(
            &k,
            &[],
            &input_streams(&left, &right),
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        assert_eq!(to_i32(&outs[0]), reference(&left, &right, 8));
    }

    #[test]
    fn matches_reference_on_wide_machine() {
        let machine = Machine::paper(stream_vlsi::Shape::new(32, 5));
        let k = kernel(&machine);
        let (left, right) = sample_inputs(128, 9);
        let outs = execute(
            &k,
            &[],
            &input_streams(&left, &right),
            &ExecConfig::with_clusters(32),
        )
        .unwrap();
        assert_eq!(to_i32(&outs[0]), reference(&left, &right, 32));
    }

    #[test]
    fn identical_images_give_zero_sad() {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let (left, _) = sample_inputs(32, 3);
        let outs = execute(
            &k,
            &[],
            &input_streams(&left, &left.clone()),
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        assert!(to_i32(&outs[0]).iter().all(|&v| v == 0));
    }

    #[test]
    fn stats_are_in_the_expected_band() {
        let machine = Machine::baseline();
        let s = kernel(&machine).stats();
        // Tens of ALU ops, ~7 SRF accesses, 12 comms, 2 SP accesses.
        assert!(s.alu_ops >= 25 && s.alu_ops <= 45, "alu = {}", s.alu_ops);
        assert_eq!(s.srf_accesses, 7);
        assert_eq!(s.comms, 12);
        assert_eq!(s.sp_accesses, 2);
    }

    #[test]
    fn temporal_ring_accumulates() {
        // Constant unit difference: raw sad = 9 everywhere; after the ring
        // fills, output doubles.
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let cols = 8 * (SP_RING as usize + 2);
        let left = [vec![1; cols], vec![1; cols], vec![1; cols]];
        let right = [vec![0; cols], vec![0; cols], vec![0; cols]];
        let outs = execute(
            &k,
            &[],
            &input_streams(&left, &right),
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        let got = to_i32(&outs[0]);
        assert_eq!(got[0], 9);
        assert_eq!(*got.last().unwrap(), 18);
    }
}
