//! Irast: span-rasterization kernel (Table 4, 16-bit coordinates) — the
//! conditional-stream workhorse of the RENDER application.
//!
//! Each record is one screen-space span segment `(x0, width, y, color,
//! z0, dz/dx)`; the kernel expands it into up to [`STEPS`] fragments using
//! conditional output streams, which route variable-rate data through the
//! intercluster switch (Kapasi et al.) — exactly why the paper calls Irast
//! dependent on conditional-stream and intercluster bandwidth.

use crate::util::{words_f32, words_i32, XorShift32};
use stream_ir::{Kernel, KernelBuilder, Scalar, Ty};
use stream_machine::Machine;

/// Fragments a single record can expand to (spans wider than this are split
/// into multiple records by the producer).
pub const STEPS: usize = 16;

/// One span segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Leftmost x.
    pub x0: i32,
    /// Fragments to emit (1..=[`STEPS`]).
    pub width: i32,
    /// Scanline.
    pub y: i32,
    /// Color index.
    pub color: i32,
    /// Depth at `x0`.
    pub z0: f32,
    /// Depth slope.
    pub dzdx: f32,
}

/// A produced fragment: packed position/color word plus interpolated depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fragment {
    /// `x | y << 11 | color << 22`.
    pub packed: i32,
    /// Interpolated depth.
    pub z: f32,
}

/// Builds the Irast kernel. Structure is machine-independent; conditional
/// streams do the cross-cluster routing.
pub fn kernel(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("irast");

    let ints = b.in_stream(Ty::I32); // x0, width, y, color
    let floats = b.in_stream(Ty::F32); // z0, dzdx
    let frag_out = b.out_stream(Ty::I32); // conditional
    let depth_out = b.out_stream(Ty::F32); // conditional

    let x0 = b.read(ints);
    let width = b.read(ints);
    let y = b.read(ints);
    let color = b.read(ints);
    let z0 = b.read(floats);
    let dzdx = b.read(floats);

    let eleven = b.const_i(11);
    let twenty_two = b.const_i(22);
    let y_shift = b.shl(y, eleven);
    let c_shift = b.shl(color, twenty_two);
    let base = b.or(y_shift, c_shift);

    for k in 0..STEPS as i32 {
        let kc = b.const_i(k);
        let active = b.lt(kc, width);
        let x = b.add(x0, kc);
        let packed = b.or(base, x);
        let kf = b.const_f(k as f32);
        let dz = b.mul(dzdx, kf);
        let z = b.add(z0, dz);
        b.cond_write(frag_out, active, packed);
        b.cond_write(depth_out, active, z);
    }

    b.finish().expect("irast kernel is structurally valid")
}

/// Packs spans into the kernel's two input streams.
pub fn input_streams(spans: &[Span]) -> Vec<Vec<Scalar>> {
    let ints = words_i32(spans.iter().flat_map(|s| [s.x0, s.width, s.y, s.color]));
    let floats = words_f32(spans.iter().flat_map(|s| [s.z0, s.dzdx]));
    vec![ints, floats]
}

/// Scalar reference reproducing the kernel's fragment ordering: for each
/// SIMD strip of `clusters` spans, step offsets advance in lockstep and
/// active clusters append in cluster order.
pub fn reference(spans: &[Span], clusters: usize) -> Vec<Fragment> {
    assert!(spans.len().is_multiple_of(clusters));
    let mut frags = Vec::new();
    for strip in spans.chunks(clusters) {
        for k in 0..STEPS as i32 {
            for s in strip {
                if k < s.width {
                    frags.push(Fragment {
                        packed: (s.y << 11) | (s.color << 22) | (s.x0 + k),
                        z: s.z0 + s.dzdx * k as f32,
                    });
                }
            }
        }
    }
    frags
}

/// Deterministic sample spans (coordinates sized to pack losslessly).
pub fn sample_spans(count: usize, seed: u32) -> Vec<Span> {
    let mut rng = XorShift32(seed);
    (0..count)
        .map(|_| Span {
            x0: rng.next_below(1024) as i32,
            width: 1 + rng.next_below(STEPS as u32) as i32,
            y: rng.next_below(1024) as i32,
            color: rng.next_below(256) as i32,
            z0: rng.next_f32() * 100.0,
            dzdx: rng.next_f32() - 0.5,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{to_f32, to_i32};
    use stream_ir::{execute, ExecConfig};

    fn run(spans: &[Span], clusters: usize) -> Vec<Fragment> {
        let machine = Machine::baseline();
        let k = kernel(&machine);
        let outs = execute(
            &k,
            &[],
            &input_streams(spans),
            &ExecConfig::with_clusters(clusters),
        )
        .unwrap();
        let packed = to_i32(&outs[0]);
        let depth = to_f32(&outs[1]);
        packed
            .into_iter()
            .zip(depth)
            .map(|(p, z)| Fragment { packed: p, z })
            .collect()
    }

    #[test]
    fn matches_reference() {
        let spans = sample_spans(64, 3);
        assert_eq!(run(&spans, 8), reference(&spans, 8));
    }

    #[test]
    fn fragment_count_equals_total_width() {
        let spans = sample_spans(32, 9);
        let total: i32 = spans.iter().map(|s| s.width).sum();
        assert_eq!(run(&spans, 8).len(), total as usize);
    }

    #[test]
    fn packing_is_lossless() {
        let spans = vec![
            Span {
                x0: 100,
                width: 2,
                y: 7,
                color: 5,
                z0: 1.0,
                dzdx: 0.5,
            };
            8
        ];
        let frags = run(&spans, 8);
        for f in &frags {
            assert_eq!(f.packed & 0x7ff, 100 + (if f.z > 1.25 { 1 } else { 0 }));
            assert_eq!((f.packed >> 11) & 0x7ff, 7);
            assert_eq!((f.packed >> 22) & 0xff, 5);
        }
    }

    #[test]
    fn ordering_depends_on_simd_width() {
        // Conditional compaction interleaves by strip: different C, same
        // fragment multiset, different order.
        let spans = sample_spans(16, 15);
        let a = run(&spans, 4);
        let b = run(&spans, 16);
        assert_eq!(a.len(), b.len());
        let mut av: Vec<i32> = a.iter().map(|f| f.packed).collect();
        let mut bv: Vec<i32> = b.iter().map(|f| f.packed).collect();
        av.sort_unstable();
        bv.sort_unstable();
        assert_eq!(av, bv);
    }

    #[test]
    fn stats_show_conditional_stream_pressure() {
        let s = kernel(&Machine::baseline()).stats();
        // Two conditional accesses per step route through the intercluster
        // switch — Irast is conditional-stream bound, as in the paper.
        assert_eq!(
            s.by_class[&stream_machine::OpClass::CondStream],
            2 * STEPS as u32
        );
        assert_eq!(s.comms, 2 * STEPS as u32);
        assert!(s.alu_ops >= 60 && s.alu_ops <= 110, "alu = {}", s.alu_ops);
    }
}
