//! Property-based tests over the kernel suite: functional correctness at
//! arbitrary SIMD widths and dataset sizes, and structural invariants of
//! the per-machine builds.

use proptest::prelude::*;
use stream_ir::{execute, ExecConfig};
use stream_kernels::{blocksad, convolve, dct, fft, irast, noise, update, KernelId};
use stream_machine::Machine;
use stream_vlsi::Shape;

fn pow2_clusters() -> impl Strategy<Value = u32> {
    prop_oneof![Just(2u32), Just(4), Just(8), Just(16), Just(32)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocksad matches its reference bit-for-bit at any width/size.
    #[test]
    fn blocksad_matches_reference(
        clusters in pow2_clusters(),
        strips in 1usize..6,
        seed in 1u32..5000,
    ) {
        let machine = Machine::paper(Shape::new(clusters, 5));
        let k = blocksad::kernel(&machine);
        let cols = clusters as usize * strips;
        let (left, right) = blocksad::sample_inputs(cols, seed);
        let outs = execute(
            &k,
            &[],
            &blocksad::input_streams(&left, &right),
            &ExecConfig::with_clusters(clusters as usize),
        )
        .unwrap();
        let got: Vec<i32> = outs[0].iter().map(|w| w.as_i32().unwrap()).collect();
        prop_assert_eq!(got, blocksad::reference(&left, &right, clusters as usize));
    }

    /// Convolve matches its reference to float tolerance at any width.
    #[test]
    fn convolve_matches_reference(
        clusters in pow2_clusters(),
        strips in 1usize..5,
        seed in 1u32..5000,
    ) {
        let machine = Machine::paper(Shape::new(clusters, 5));
        let k = convolve::kernel(&machine);
        let taps = convolve::Taps::gaussian();
        let cols = clusters as usize * strips;
        let rows = convolve::sample_rows(cols, seed);
        let outs = execute(
            &k,
            &convolve::params(&taps),
            &convolve::input_streams(&rows),
            &ExecConfig::with_clusters(clusters as usize),
        )
        .unwrap();
        let (smooth, edge) = convolve::reference(&rows, &taps, clusters as usize);
        for (i, want) in smooth.iter().enumerate() {
            let got = outs[0][i].as_f32().unwrap();
            prop_assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()));
        }
        for (i, want) in edge.iter().enumerate() {
            let got = outs[1][i].as_f32().unwrap();
            prop_assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()));
        }
    }

    /// Irast produces exactly the reference fragment sequence.
    #[test]
    fn irast_matches_reference(
        clusters in pow2_clusters(),
        strips in 1usize..6,
        seed in 1u32..5000,
    ) {
        let machine = Machine::paper(Shape::new(clusters, 5));
        let k = irast::kernel(&machine);
        let spans = irast::sample_spans(clusters as usize * strips, seed);
        let outs = execute(
            &k,
            &[],
            &irast::input_streams(&spans),
            &ExecConfig::with_clusters(clusters as usize),
        )
        .unwrap();
        let want = irast::reference(&spans, clusters as usize);
        prop_assert_eq!(outs[0].len(), want.len());
        for (i, f) in want.iter().enumerate() {
            prop_assert_eq!(outs[0][i].as_i32().unwrap(), f.packed);
            prop_assert_eq!(outs[1][i].as_f32().unwrap(), f.z);
        }
    }

    /// The DCT preserves energy (orthonormal) for arbitrary blocks.
    #[test]
    fn dct_preserves_energy(count in 1usize..4, seed in 1u32..5000) {
        let blocks = dct::sample_blocks(count * 8, seed);
        let out = dct::reference(&blocks);
        for (b, o) in blocks.chunks(dct::BLOCK).zip(out.chunks(dct::BLOCK)) {
            let eb: f32 = b.iter().map(|x| x * x).sum();
            let eo: f32 = o.iter().map(|x| x * x).sum();
            prop_assert!((eb - eo).abs() < 2e-2 * (1.0 + eb));
        }
    }

    /// Update is a contraction toward the Householder reflection: applying
    /// it twice with the same unit v and tau=2 gives back the original
    /// (H is an involution).
    #[test]
    fn householder_is_an_involution(seed in 1u32..5000) {
        let clusters = 8usize;
        let (a, mut v, _, _scale) = update::sample_inputs(2, clusters, seed);
        // Normalize v per column so H = I - 2 v v^T is orthogonal.
        let height = update::SEG * clusters;
        for col in v.chunks_mut(height) {
            let norm: f32 = col.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in col.iter_mut() {
                *x /= norm;
            }
        }
        let ones = vec![1.0f32; update::SCALE_TABLE];
        let once = update::reference(&a, &v, 2.0, &ones, clusters, 2);
        let twice = update::reference(&once, &v, 2.0, &ones, clusters, 2);
        for (x, y) in a.iter().zip(&twice) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    /// The noise kernel's output is bounded in [0, 1] for any coordinates.
    #[test]
    fn noise_reference_is_bounded(seed in 1u32..5000, count in 1usize..64) {
        let (xs, ys) = noise::sample_coords(count, seed);
        for v in noise::reference(&xs, &ys) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// FFT of a pure tone concentrates energy in the right bin.
    #[test]
    fn fft_localizes_pure_tones(bin in 0usize..16) {
        let n = 16usize;
        let input: Vec<fft::C32> = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f32::consts::PI * (bin * i) as f32 / n as f32;
                (theta.cos(), theta.sin())
            })
            .collect();
        let spec = fft::fft_reference(&input);
        for (k, &(re, im)) in spec.iter().enumerate() {
            let mag = (re * re + im * im).sqrt();
            if k == bin {
                prop_assert!((mag - n as f32).abs() < 0.1, "bin {k}: {mag}");
            } else {
                prop_assert!(mag < 0.1, "leak at {k}: {mag}");
            }
        }
    }

    /// Every suite kernel builds with consistent stream declarations on
    /// every power-of-two machine.
    #[test]
    fn suite_builds_are_structurally_consistent(
        clusters in pow2_clusters(),
        n in prop_oneof![Just(2u32), Just(5), Just(10), Just(14)],
    ) {
        let machine = Machine::paper(Shape::new(clusters, n));
        for id in KernelId::ALL {
            let k = id.build(&machine);
            // Stream budget: all input+output streams fit the cluster SBs.
            let total = k.inputs().len() + k.outputs().len();
            prop_assert!(
                total <= machine.derived().cluster_sbs as usize,
                "{id} uses {total} streams"
            );
            prop_assert!(k.sp_words() <= 256, "{id} scratchpad");
        }
    }
}
