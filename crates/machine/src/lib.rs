#![warn(missing_docs)]
//! Machine descriptions for stream processors.
//!
//! Bridges the VLSI cost model ([`stream_vlsi`]) and the compiler/simulator:
//! a [`Machine`] is a `(C, N)` configuration elaborated with functional-unit
//! counts, operation latencies (Imagine values plus the pipeline stages the
//! Section 4 delay model imposes), register capacity, and SRF sizing. The
//! [`SystemParams`] describe the 2007 technology point of the paper's
//! Section 5 evaluation (1 GHz, 16 GB/s memory, 2 GB/s host channel).
//!
//! # Examples
//!
//! ```
//! use stream_machine::{Machine, OpClass};
//! use stream_vlsi::Shape;
//!
//! // COMM operations get slower as the cluster grid grows.
//! let near = Machine::paper(Shape::new(8, 5)).latency(OpClass::Comm);
//! let far = Machine::paper(Shape::new(128, 5)).latency(OpClass::Comm);
//! assert!(far > near);
//! ```

mod bandwidth;
mod machine;
mod op_class;

pub use bandwidth::BandwidthHierarchy;
pub use machine::{Machine, MachineConfig, SystemParams};
pub use op_class::{FuKind, OpClass};
