//! Operation classes and the functional units that execute them.

use std::fmt;

/// The kinds of functional unit in an arithmetic cluster (Figure 3).
///
/// Counts per cluster come from [`stream_vlsi::DerivedCounts`]: `N` ALUs,
/// `N_SP` scratchpads, `N_COMM` intercluster communication units, plus
/// `N_CLSB` streambuffer ports into the SRF bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// A 32-bit arithmetic unit (the paper treats ALUs as homogeneous).
    Alu,
    /// Scratchpad unit for small indexed addressing within a cluster.
    Scratchpad,
    /// Intercluster communication unit.
    Comm,
    /// A streambuffer port between the cluster and its SRF bank.
    SbPort,
}

impl FuKind {
    /// All functional-unit kinds, in display order.
    pub const ALL: [FuKind; 4] = [
        FuKind::Alu,
        FuKind::Scratchpad,
        FuKind::Comm,
        FuKind::SbPort,
    ];
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::Alu => "ALU",
            FuKind::Scratchpad => "SP",
            FuKind::Comm => "COMM",
            FuKind::SbPort => "SB",
        };
        f.write_str(s)
    }
}

/// Scheduling classes of kernel operations.
///
/// Each class occupies one functional unit of its [`FuKind`] for one issue
/// slot and produces its result after a class- and machine-dependent latency
/// (see [`crate::Machine::latency`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer add/subtract/compare.
    IntAlu,
    /// Integer logic and shifts (single-stage).
    Logic,
    /// Integer multiply.
    IntMul,
    /// Floating-point add/subtract/compare/convert.
    FloatAdd,
    /// Floating-point multiply.
    FloatMul,
    /// Floating-point divide or square root (the divide-square-root unit's
    /// iterative operation, executed on an ALU slot as in the cost model).
    FloatDiv,
    /// Select / conditional move (predication support).
    Select,
    /// Scratchpad read (indexed).
    SpRead,
    /// Scratchpad write (indexed).
    SpWrite,
    /// Intercluster communication: exchange one word with another cluster
    /// across the intercluster switch.
    Comm,
    /// Conditional-stream access: data-dependent stream read/write routed
    /// through the intercluster switch (Kapasi et al., MICRO 2000).
    CondStream,
    /// Streambuffer read (stream input element into the cluster).
    SbRead,
    /// Streambuffer write (result element out to the SRF).
    SbWrite,
}

impl OpClass {
    /// The functional unit kind this class executes on.
    pub fn fu_kind(&self) -> FuKind {
        match self {
            OpClass::IntAlu
            | OpClass::Logic
            | OpClass::IntMul
            | OpClass::FloatAdd
            | OpClass::FloatMul
            | OpClass::FloatDiv
            | OpClass::Select => FuKind::Alu,
            OpClass::SpRead | OpClass::SpWrite => FuKind::Scratchpad,
            OpClass::Comm | OpClass::CondStream => FuKind::Comm,
            OpClass::SbRead | OpClass::SbWrite => FuKind::SbPort,
        }
    }

    /// Whether this class counts as an "ALU operation" in the paper's GOPS
    /// accounting (Table 5 normalizes to `N` ALU ops per cycle).
    pub fn is_alu_op(&self) -> bool {
        self.fu_kind() == FuKind::Alu
    }

    /// Base latency in cycles on the Imagine prototype (before any extra
    /// switch-traversal pipeline stages).
    pub(crate) fn base_latency(&self) -> u32 {
        match self {
            OpClass::Logic | OpClass::Select => 1,
            OpClass::IntAlu => 2,
            OpClass::IntMul | OpClass::FloatAdd | OpClass::FloatMul => 4,
            OpClass::FloatDiv => 17,
            OpClass::SpRead => 2,
            OpClass::SpWrite => 1,
            // COMM and conditional streams add the pipelined intercluster
            // traversal on top of this issue stage.
            OpClass::Comm => 1,
            OpClass::CondStream => 2,
            OpClass::SbRead => 3,
            OpClass::SbWrite => 1,
        }
    }

    /// All operation classes.
    pub const ALL: [OpClass; 13] = [
        OpClass::IntAlu,
        OpClass::Logic,
        OpClass::IntMul,
        OpClass::FloatAdd,
        OpClass::FloatMul,
        OpClass::FloatDiv,
        OpClass::Select,
        OpClass::SpRead,
        OpClass::SpWrite,
        OpClass::Comm,
        OpClass::CondStream,
        OpClass::SbRead,
        OpClass::SbWrite,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "ialu",
            OpClass::Logic => "logic",
            OpClass::IntMul => "imul",
            OpClass::FloatAdd => "fadd",
            OpClass::FloatMul => "fmul",
            OpClass::FloatDiv => "fdiv",
            OpClass::Select => "select",
            OpClass::SpRead => "sp_rd",
            OpClass::SpWrite => "sp_wr",
            OpClass::Comm => "comm",
            OpClass::CondStream => "cond",
            OpClass::SbRead => "sb_rd",
            OpClass::SbWrite => "sb_wr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_classes_map_to_alu() {
        for c in [
            OpClass::IntAlu,
            OpClass::Logic,
            OpClass::IntMul,
            OpClass::FloatAdd,
            OpClass::FloatMul,
            OpClass::FloatDiv,
            OpClass::Select,
        ] {
            assert_eq!(c.fu_kind(), FuKind::Alu);
            assert!(c.is_alu_op());
        }
    }

    #[test]
    fn non_alu_classes_are_not_gops() {
        for c in [
            OpClass::SpRead,
            OpClass::SpWrite,
            OpClass::Comm,
            OpClass::CondStream,
            OpClass::SbRead,
            OpClass::SbWrite,
        ] {
            assert!(!c.is_alu_op());
        }
    }

    #[test]
    fn every_class_has_positive_latency() {
        for c in OpClass::ALL {
            assert!(c.base_latency() >= 1);
        }
    }

    #[test]
    fn divide_is_the_long_pole() {
        for c in OpClass::ALL {
            assert!(OpClass::FloatDiv.base_latency() >= c.base_latency());
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(OpClass::FloatMul.to_string(), "fmul");
        assert_eq!(FuKind::Comm.to_string(), "COMM");
    }
}
