//! The three-tier data bandwidth hierarchy (paper Section 2.2).
//!
//! Stream processors work because their register organization provides
//! successively wider tiers: external memory, the SRF, and the cluster
//! LRFs behind the intracluster switch. For the Imagine prototype the paper
//! quotes 2.3 / 19.2 / 326.4 GB/s; this module computes the same three
//! numbers for any machine so scaling studies can check that the hierarchy
//! ratios survive.

use crate::{Machine, SystemParams};

/// Peak bandwidths of the three hierarchy tiers, in 32-bit words per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthHierarchy {
    /// Tier 1: external memory (pin/DRAM limited).
    pub memory_words: f64,
    /// Tier 2: SRF — every bank transfers `G_SRF * N` words per cycle.
    pub srf_words: f64,
    /// Tier 3: LRFs — every functional unit sustains two reads and one
    /// write per cycle through the intracluster switch.
    pub lrf_words: f64,
}

impl BandwidthHierarchy {
    /// Computes the hierarchy for `machine` under `system`.
    pub fn compute(machine: &Machine, system: &SystemParams) -> Self {
        let c = f64::from(machine.clusters());
        let n = f64::from(machine.alus_per_cluster());
        let n_fu = f64::from(machine.derived().fus_per_cluster);
        let g_srf = 0.5; // Table 1's G_SRF
        Self {
            memory_words: system.memory_words_per_cycle,
            srf_words: g_srf * n * c,
            lrf_words: 3.0 * n_fu * c,
        }
    }

    /// Tier bandwidth in GB/s at `clock_ghz` (4-byte words).
    pub fn gbps(words_per_cycle: f64, clock_ghz: f64) -> f64 {
        words_per_cycle * 4.0 * clock_ghz
    }

    /// SRF-to-memory bandwidth ratio.
    pub fn srf_over_memory(&self) -> f64 {
        self.srf_words / self.memory_words
    }

    /// LRF-to-SRF bandwidth ratio.
    pub fn lrf_over_srf(&self) -> f64 {
        self.lrf_words / self.srf_words
    }

    /// Peak ALU operations per word of memory bandwidth — the machine
    /// balance point. Applications whose inherent ops-per-word exceed this
    /// stay compute-bound (Section 2.2 quotes 28 for Imagine and inherent
    /// application ratios of 57.9–473.3).
    pub fn ops_per_memory_word(&self, machine: &Machine) -> f64 {
        machine.shape().total_alus() as f64 / self.memory_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_vlsi::Shape;

    fn hierarchy(c: u32, n: u32) -> BandwidthHierarchy {
        BandwidthHierarchy::compute(
            &Machine::paper(Shape::new(c, n)),
            &SystemParams::paper_2007(),
        )
    }

    #[test]
    fn tiers_are_ordered() {
        for &(c, n) in &[(8u32, 5u32), (32, 5), (128, 10)] {
            let h = hierarchy(c, n);
            assert!(h.memory_words < h.srf_words, "C={c} N={n}");
            assert!(h.srf_words < h.lrf_words, "C={c} N={n}");
        }
    }

    #[test]
    fn baseline_matches_imagine_character() {
        // Imagine: 2.3 / 19.2 / 326.4 GB/s — ratios ~8.3x and ~17x.
        let h = hierarchy(8, 5);
        assert_eq!(h.srf_words, 20.0); // 0.5 * 5 * 8
        assert_eq!(h.lrf_words, 168.0); // 3 * 7 * 8
        assert!(h.srf_over_memory() > 3.0 && h.srf_over_memory() < 10.0);
        assert!(h.lrf_over_srf() > 5.0 && h.lrf_over_srf() < 15.0);
    }

    #[test]
    fn hierarchy_widens_with_scaling_while_memory_stays() {
        let small = hierarchy(8, 5);
        let big = hierarchy(128, 10);
        assert_eq!(small.memory_words, big.memory_words);
        assert!(big.srf_words > 10.0 * small.srf_words);
        assert!(big.lrf_words > 10.0 * small.lrf_words);
        // The widening gap is the paper's whole motivation: ops per memory
        // word grows from 10 to 320.
        let m = Machine::paper(Shape::new(128, 10));
        assert!(big.ops_per_memory_word(&m) > 300.0);
    }

    #[test]
    fn gbps_conversion() {
        assert_eq!(BandwidthHierarchy::gbps(4.0, 1.0), 16.0); // 16 GB/s memory
    }
}
