//! A concrete stream processor a kernel can be compiled for and a program
//! simulated on: shape + derived unit counts + delay-derived latencies.

use crate::{FuKind, OpClass};
use std::fmt;
use stream_vlsi::{CostModel, CostReport, DelayModel, DerivedCounts, Shape, TechParams};

/// A fully-elaborated machine configuration.
///
/// Construction runs the VLSI cost model once so that switch delays are
/// available to derive operation latencies, exactly as Section 5.1 does:
/// "the latencies of communications were taken from the results presented in
/// Section 4".
///
/// # Examples
///
/// ```
/// use stream_machine::Machine;
/// use stream_vlsi::Shape;
///
/// let m = Machine::paper(Shape::BASELINE);
/// assert_eq!(m.clusters(), 8);
/// assert_eq!(m.alus_per_cluster(), 5);
/// // One COMM unit and one scratchpad at N = 5.
/// assert_eq!(m.fu_count(stream_machine::FuKind::Comm), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    shape: Shape,
    config: MachineConfig,
    derived: DerivedCounts,
    cost: CostReport,
    extra_intra_stages: u32,
    intercluster_cycles: u32,
    lrf_words_per_fu: u32,
}

/// The configuration identity of a [`Machine`]: its shape plus a
/// fingerprint of the technology parameters it was elaborated with.
///
/// Everything else on a `Machine` is derived deterministically from these
/// two inputs, so `MachineConfig` is a complete, cheap (`Copy`, `Hash`,
/// `Eq`) cache key for per-machine artifacts such as compiled kernels.
///
/// # Examples
///
/// ```
/// use stream_machine::Machine;
/// use stream_vlsi::Shape;
///
/// let a = Machine::paper(Shape::BASELINE).config();
/// let b = Machine::baseline().config();
/// assert_eq!(a, b);
/// assert_ne!(a, Machine::paper(Shape::new(16, 5)).config());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineConfig {
    /// The `(C, N)` shape.
    pub shape: Shape,
    /// Fingerprint of the [`TechParams`] (see [`TechParams::fingerprint`]).
    pub params_fingerprint: u64,
}

/// Registers per LRF on Imagine; each FU input has two LRFs, and we expose
/// the aggregate as schedulable register capacity.
const LRF_REGISTERS: u32 = 16;
const LRFS_PER_FU: u32 = 2;

impl Machine {
    /// Builds a machine from a shape and technology parameters.
    pub fn new(shape: Shape, params: &TechParams) -> Self {
        let model = CostModel::new(params.clone());
        let cost = model.evaluate(shape);
        let derived = shape.derive(params);
        let delay: DelayModel = cost.delay;
        Self {
            shape,
            config: MachineConfig {
                shape,
                params_fingerprint: params.fingerprint(),
            },
            derived,
            cost,
            extra_intra_stages: delay.extra_intracluster_stages(),
            intercluster_cycles: delay.intercluster_cycles(),
            lrf_words_per_fu: LRF_REGISTERS * LRFS_PER_FU,
        }
    }

    /// Builds a machine with the published Table 1 parameters.
    pub fn paper(shape: Shape) -> Self {
        Self::new(shape, &TechParams::paper())
    }

    /// The paper's baseline `C = 8, N = 5` machine.
    pub fn baseline() -> Self {
        Self::paper(Shape::BASELINE)
    }

    /// The machine's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The configuration identity this machine was elaborated from —
    /// hashable and equality-comparable, for keying per-machine caches.
    pub fn config(&self) -> MachineConfig {
        self.config
    }

    /// `C`: the number of SIMD clusters.
    pub fn clusters(&self) -> u32 {
        self.shape.clusters
    }

    /// `N`: ALUs per cluster.
    pub fn alus_per_cluster(&self) -> u32 {
        self.shape.alus_per_cluster
    }

    /// Derived per-cluster unit counts.
    pub fn derived(&self) -> &DerivedCounts {
        &self.derived
    }

    /// The VLSI cost report computed at construction.
    pub fn cost(&self) -> &CostReport {
        &self.cost
    }

    /// Number of functional units of `kind` available per cluster per cycle.
    pub fn fu_count(&self, kind: FuKind) -> u32 {
        match kind {
            FuKind::Alu => self.shape.alus_per_cluster,
            FuKind::Scratchpad => self.derived.sp_units,
            FuKind::Comm => self.derived.comm_units,
            FuKind::SbPort => self.derived.cluster_sbs,
        }
    }

    /// Operation latency in cycles for this machine.
    ///
    /// ALU-class results and streambuffer reads pay the extra intracluster
    /// pipeline stages when the cluster has outgrown its half-cycle switch
    /// budget (Section 5.1); COMM-class operations pay the pipelined
    /// intercluster traversal (Figure 11).
    pub fn latency(&self, class: OpClass) -> u32 {
        let base = class.base_latency();
        match class.fu_kind() {
            FuKind::Alu => base + self.extra_intra_stages,
            FuKind::Scratchpad => base + self.extra_intra_stages,
            FuKind::Comm => base + self.intercluster_cycles,
            FuKind::SbPort => match class {
                OpClass::SbRead => base + self.extra_intra_stages,
                _ => base,
            },
        }
    }

    /// Extra pipeline stages from intracluster switch delay (0 for N <= 10).
    pub fn extra_intracluster_stages(&self) -> u32 {
        self.extra_intra_stages
    }

    /// Pipelined intercluster traversal in cycles.
    pub fn intercluster_cycles(&self) -> u32 {
        self.intercluster_cycles
    }

    /// Aggregate schedulable registers per cluster (all LRFs). Bounds the
    /// values simultaneously live in a software-pipelined schedule.
    pub fn register_capacity(&self) -> u32 {
        self.derived.fus_per_cluster * self.lrf_words_per_fu
    }

    /// Depth of the instruction-issue plus cluster pipeline, paid on every
    /// kernel invocation (Section 5.3's "cost associated with filling the
    /// microcontroller and cluster pipeline every time a kernel is
    /// executed").
    pub fn pipeline_fill_cycles(&self) -> u32 {
        // Microcontroller sequencing and decode, instruction distribution to
        // the grid, plus the deepest FU pipeline.
        8 + self.extra_intra_stages + self.intercluster_cycles
    }

    /// SRF bank capacity in words (per cluster).
    pub fn srf_bank_words(&self) -> u64 {
        self.derived.srf_bank_words(&TechParams::paper())
    }

    /// Total SRF capacity in words.
    pub fn srf_total_words(&self) -> u64 {
        self.srf_bank_words() * u64::from(self.clusters())
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} ALUs, {} FUs/cluster)",
            self.shape,
            self.shape.total_alus(),
            self.derived.fus_per_cluster
        )
    }
}

/// System-level parameters for the 2007 technology point simulated in
/// Section 5: 45 nm, 1 GHz clock, eight Rambus channels, 2 GB/s host link.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    /// Processor clock in GHz (1 GHz at 45 FO4 in 45 nm).
    pub clock_ghz: f64,
    /// External memory bandwidth in 32-bit words per cycle (16 GB/s at
    /// 1 GHz = 4 words/cycle).
    pub memory_words_per_cycle: f64,
    /// External memory latency in cycles (Table 1's `T`).
    pub memory_latency_cycles: u32,
    /// Host-to-stream-processor channel bandwidth in bytes per cycle
    /// (2 GB/s at 1 GHz).
    pub host_bytes_per_cycle: f64,
    /// Size of one stream instruction on the host channel, in bytes.
    pub stream_instruction_bytes: u32,
}

impl SystemParams {
    /// The 2007 technology point of Section 5.
    pub fn paper_2007() -> Self {
        Self {
            clock_ghz: 1.0,
            memory_words_per_cycle: 4.0,
            memory_latency_cycles: 55,
            host_bytes_per_cycle: 2.0,
            stream_instruction_bytes: 32,
        }
    }

    /// Cycles for the host to issue one stream instruction.
    pub fn host_issue_cycles(&self) -> u64 {
        (f64::from(self.stream_instruction_bytes) / self.host_bytes_per_cycle).ceil() as u64
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        Self::paper_2007()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_resources() {
        let m = Machine::baseline();
        assert_eq!(m.fu_count(FuKind::Alu), 5);
        assert_eq!(m.fu_count(FuKind::Scratchpad), 1);
        assert_eq!(m.fu_count(FuKind::Comm), 1);
        assert_eq!(m.fu_count(FuKind::SbPort), 7);
        assert_eq!(m.extra_intracluster_stages(), 0);
    }

    #[test]
    fn baseline_latencies_are_imagine_values() {
        let m = Machine::baseline();
        assert_eq!(m.latency(OpClass::FloatAdd), 4);
        assert_eq!(m.latency(OpClass::FloatMul), 4);
        assert_eq!(m.latency(OpClass::FloatDiv), 17);
        assert_eq!(m.latency(OpClass::IntAlu), 2);
        assert_eq!(m.latency(OpClass::SbRead), 3);
    }

    #[test]
    fn n14_alu_ops_pay_extra_stage() {
        let m = Machine::paper(Shape::new(8, 14));
        assert_eq!(m.extra_intracluster_stages(), 1);
        assert_eq!(m.latency(OpClass::FloatAdd), 5);
        assert_eq!(m.latency(OpClass::SbRead), 4);
        // SB writes head outward; no extra read stage.
        assert_eq!(m.latency(OpClass::SbWrite), 1);
    }

    #[test]
    fn comm_latency_grows_with_clusters() {
        let small = Machine::paper(Shape::new(8, 5));
        let big = Machine::paper(Shape::new(128, 5));
        assert!(big.latency(OpClass::Comm) > small.latency(OpClass::Comm));
        assert!(big.latency(OpClass::CondStream) > small.latency(OpClass::CondStream));
    }

    #[test]
    fn register_capacity_scales_with_fus() {
        let n5 = Machine::paper(Shape::new(8, 5));
        let n10 = Machine::paper(Shape::new(8, 10));
        assert_eq!(n5.register_capacity(), 7 * 32);
        assert!(n10.register_capacity() > n5.register_capacity());
    }

    #[test]
    fn srf_capacity_matches_model() {
        let m = Machine::baseline();
        assert_eq!(m.srf_bank_words(), 5500);
        assert_eq!(m.srf_total_words(), 44_000);
    }

    #[test]
    fn pipeline_fill_grows_with_machine_span() {
        let small = Machine::paper(Shape::new(8, 5));
        let big = Machine::paper(Shape::new(128, 14));
        assert!(big.pipeline_fill_cycles() > small.pipeline_fill_cycles());
    }

    #[test]
    fn system_params_2007() {
        let s = SystemParams::paper_2007();
        assert_eq!(s.memory_words_per_cycle, 4.0);
        assert_eq!(s.host_issue_cycles(), 16);
        assert_eq!(s, SystemParams::default());
    }

    #[test]
    fn config_identity_distinguishes_shape_and_params() {
        use std::collections::HashSet;
        let a = Machine::baseline().config();
        let b = Machine::paper(Shape::BASELINE).config();
        assert_eq!(a, b);
        let custom = Machine::new(Shape::BASELINE, &TechParams::full_custom()).config();
        assert_ne!(a, custom);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&custom));
        assert!(!set.contains(&Machine::paper(Shape::new(16, 5)).config()));
    }

    #[test]
    fn display_mentions_alu_total() {
        let m = Machine::paper(Shape::new(128, 5));
        assert!(m.to_string().contains("640 ALUs"));
    }
}
