//! Iterative modulo scheduling (software pipelining), after Rau (MICRO-27,
//! 1994) — the algorithm family behind the Imagine kernel scheduler.

use crate::{Ddg, EdgeKind, MiiBounds};
use stream_machine::{FuKind, Machine};

/// A legal modulo schedule: every node has an absolute start time; the loop
/// kernel repeats every [`ModuloSchedule::ii`] cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloSchedule {
    /// The initiation interval.
    pub ii: u32,
    /// Start time per DDG node.
    pub times: Vec<u32>,
}

impl ModuloSchedule {
    /// Number of pipeline stages: the span of the schedule in IIs.
    pub fn stages(&self) -> u32 {
        match self.times.iter().max() {
            Some(&t) => t / self.ii + 1,
            None => 1,
        }
    }

    /// Flat schedule length in cycles (prologue + one kernel iteration).
    pub fn length(&self, ddg: &Ddg) -> u32 {
        ddg.nodes()
            .iter()
            .zip(&self.times)
            .map(|(n, &t)| t + n.latency)
            .max()
            .unwrap_or(0)
    }

    /// Verifies dependence and resource legality against `ddg`/`machine`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn verify(&self, ddg: &Ddg, machine: &Machine) -> Result<(), String> {
        for e in ddg.edges() {
            let lhs = i64::from(self.times[e.from]) + i64::from(e.latency);
            let rhs = i64::from(self.times[e.to]) + i64::from(self.ii) * i64::from(e.distance);
            if lhs > rhs {
                return Err(format!(
                    "dependence violated: node {} @{} + {} > node {} @{} + {}*{}",
                    e.from,
                    self.times[e.from],
                    e.latency,
                    e.to,
                    self.times[e.to],
                    self.ii,
                    e.distance
                ));
            }
        }
        let mut usage = vec![[0u32; 4]; self.ii as usize];
        for (n, &t) in ddg.nodes().iter().zip(&self.times) {
            let slot = (t % self.ii) as usize;
            let k = fu_index(n.class.fu_kind());
            usage[slot][k] += 1;
            if usage[slot][k] > machine.fu_count(n.class.fu_kind()) {
                return Err(format!(
                    "resource overflow: {} units of {} in modulo slot {}",
                    usage[slot][k],
                    n.class.fu_kind(),
                    slot
                ));
            }
        }
        Ok(())
    }

    /// Steady-state MaxLive: the most values simultaneously live in any
    /// cycle of the repeating kernel, counting the rotating copies that
    /// lifetimes spanning multiple IIs require.
    pub fn register_estimate(&self, ddg: &Ddg) -> u32 {
        if self.times.is_empty() {
            return 0;
        }
        let ii = i64::from(self.ii);
        // Lifetime [def, last] in the flat schedule; in steady state the
        // copy from iteration k is live over [def + k*ii, last + k*ii].
        let mut intervals: Vec<(i64, i64)> = Vec::with_capacity(ddg.nodes().len());
        for (i, _node) in ddg.nodes().iter().enumerate() {
            let def = i64::from(self.times[i]);
            let mut last = def + 1;
            for e in ddg.succ_edges(i) {
                if e.kind == EdgeKind::Data {
                    last = last.max(i64::from(self.times[e.to]) + ii * i64::from(e.distance));
                }
            }
            intervals.push((def, last));
        }
        let mut max_live = 0i64;
        for phase in 0..ii {
            let mut live = 0i64;
            for &(d, l) in &intervals {
                // Number of integers k with d <= phase + k*ii <= l:
                // floor((l-p)/ii) - ceil((d-p)/ii) + 1.
                let count = (l - phase).div_euclid(ii) - (d - phase - 1).div_euclid(ii) - 1;
                live += (count + 1).max(0);
            }
            max_live = max_live.max(live);
        }
        max_live as u32
    }
}

fn fu_index(kind: FuKind) -> usize {
    match kind {
        FuKind::Alu => 0,
        FuKind::Scratchpad => 1,
        FuKind::Comm => 2,
        FuKind::SbPort => 3,
    }
}

/// Attempts a modulo schedule at exactly `ii`, with an operation budget
/// proportional to the graph size. Returns `None` if the budget is exhausted
/// before a legal schedule is found.
pub fn schedule_at_ii(ddg: &Ddg, machine: &Machine, ii: u32) -> Option<ModuloSchedule> {
    schedule_at_ii_memo(ddg, machine, ii, &mut HeightsMemo::new(ddg))
}

/// [`schedule_at_ii`] with priority heights memoized across successive II
/// attempts (see [`HeightsMemo`]).
pub(crate) fn schedule_at_ii_memo(
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    memo: &mut HeightsMemo,
) -> Option<ModuloSchedule> {
    assert!(ii >= 1);
    let n = ddg.nodes().len();
    if n == 0 {
        return Some(ModuloSchedule {
            ii,
            times: Vec::new(),
        });
    }

    // One span + one flag read per II attempt; the placement loop below
    // stays atomic-free (backtracks accumulate in a plain local).
    let mut attempt_span = stream_trace::span("sched", "attempt");
    attempt_span.arg("ii", ii);
    attempt_span.arg("ops", n);
    stream_trace::count("sched.attempts", 1);
    let mut backtracks: u64 = 0;

    let heights = memo.get(ddg, ii);
    let kinds: Vec<usize> = ddg
        .nodes()
        .iter()
        .map(|node| fu_index(node.class.fu_kind()))
        .collect();
    let avail: [u32; 4] = [
        machine.fu_count(FuKind::Alu),
        machine.fu_count(FuKind::Scratchpad),
        machine.fu_count(FuKind::Comm),
        machine.fu_count(FuKind::SbPort),
    ];

    let mut time: Vec<Option<u32>> = vec![None; n];
    let mut prev_time: Vec<i64> = vec![-1; n];
    // The MRT keeps per-slot occupant lists (for victim identity, in
    // placement order) alongside plain counters; the hot free-slot probe
    // reads only the counters.
    let mut mrt: Vec<[Vec<usize>; 4]> = (0..ii as usize)
        .map(|_| [Vec::new(), Vec::new(), Vec::new(), Vec::new()])
        .collect();
    let mut occ: Vec<[u32; 4]> = vec![[0; 4]; ii as usize];
    let mut budget = (n * 24).max(256);

    #[allow(clippy::while_let_loop)] // the budget check sits between pick and use
    loop {
        // Highest-priority unscheduled op (greater height first, then
        // program order).
        let Some(u) = (0..n)
            .filter(|&i| time[i].is_none())
            .max_by(|&a, &b| heights[a].cmp(&heights[b]).then(b.cmp(&a)))
        else {
            break;
        };
        if budget == 0 {
            stream_trace::count("sched.backtracks", backtracks);
            stream_trace::count("sched.budget_exhausted", 1);
            attempt_span.arg("outcome", "budget_exhausted");
            return None;
        }
        budget -= 1;

        // Earliest start from scheduled predecessors.
        let mut estart: i64 = 0;
        for e in ddg.pred_edges(u) {
            if let Some(tp) = time[e.from] {
                let cand =
                    i64::from(tp) + i64::from(e.latency) - i64::from(ii) * i64::from(e.distance);
                estart = estart.max(cand);
            }
        }
        estart = estart.max(prev_time[u] + 1);
        let estart = estart.max(0) as u32;

        // Find a resource-free slot in [estart, estart + ii).
        let kind = kinds[u];
        let cap = avail[kind].max(1);
        let mut placed_at = None;
        for t in estart..estart + ii {
            if occ[(t % ii) as usize][kind] < cap {
                placed_at = Some(t);
                break;
            }
        }
        let t = placed_at.unwrap_or(estart);

        // Place u, evicting a resource conflict if the row is full.
        let slot = (t % ii) as usize;
        if occ[slot][kind] >= cap {
            // Evict the occupant scheduled longest ago (it will find a new
            // home); ties broken arbitrarily by position.
            let victim = mrt[slot][kind][0];
            unschedule(victim, &mut time, &mut mrt, &mut occ, &kinds, ii);
            backtracks += 1;
        }
        time[u] = Some(t);
        prev_time[u] = i64::from(t);
        mrt[slot][kind].push(u);
        occ[slot][kind] += 1;

        // Evict scheduled successors whose dependence is now violated.
        let succ_violations: Vec<usize> = ddg
            .succ_edges(u)
            .filter_map(|e| {
                time[e.to].and_then(|ts| {
                    let lhs = i64::from(t) + i64::from(e.latency);
                    let rhs = i64::from(ts) + i64::from(ii) * i64::from(e.distance);
                    (lhs > rhs && e.to != u).then_some(e.to)
                })
            })
            .collect();
        for v in succ_violations {
            unschedule(v, &mut time, &mut mrt, &mut occ, &kinds, ii);
            backtracks += 1;
        }
    }

    stream_trace::count("sched.backtracks", backtracks);

    let times: Vec<u32> = time
        .into_iter()
        .map(|t| t.expect("all scheduled"))
        .collect();
    let sched = ModuloSchedule { ii, times };
    let verdict = sched.verify(ddg, machine);
    debug_assert_eq!(verdict, Ok(()));
    attempt_span.arg("outcome", if verdict.is_ok() { "ok" } else { "invalid" });
    match verdict {
        Ok(()) => Some(sched),
        Err(_) => None,
    }
}

/// Removes `v` from the schedule: only its own FU kind's occupant row is
/// touched (order-preserving, so victim selection is unchanged), and the
/// occupancy counter is decremented.
fn unschedule(
    v: usize,
    time: &mut [Option<u32>],
    mrt: &mut [[Vec<usize>; 4]],
    occ: &mut [[u32; 4]],
    kinds: &[usize],
    ii: u32,
) {
    if let Some(t) = time[v].take() {
        let slot = (t % ii) as usize;
        let kind = kinds[v];
        let row = &mut mrt[slot][kind];
        if let Some(pos) = row.iter().position(|&x| x == v) {
            row.remove(pos);
            occ[slot][kind] -= 1;
        }
    }
}

/// Schedules `ddg`, searching IIs upward from the MII. Returns the schedule
/// and the bounds that constrained it.
pub fn modulo_schedule(ddg: &Ddg, machine: &Machine) -> Option<(ModuloSchedule, MiiBounds)> {
    let bounds = MiiBounds::compute(ddg, machine);
    let mii = bounds.mii();
    stream_trace::record("sched.res_mii", u64::from(bounds.res_mii));
    stream_trace::record("sched.rec_mii", u64::from(bounds.rec_mii));
    let mut memo = HeightsMemo::new(ddg);
    // A generous slack: IMS almost always succeeds within a few IIs of MII.
    for ii in mii..=mii.saturating_mul(2) + 32 {
        if let Some(s) = schedule_at_ii_memo(ddg, machine, ii, &mut memo) {
            return Some((s, bounds));
        }
    }
    None
}

/// Memoizes [`heights`] across successive II attempts.
///
/// Edge weights are `latency - ii * distance`, so when the DDG has no
/// loop-carried edge (`distance > 0`) the heights are II-independent and a
/// single computation serves the whole II search; otherwise the cache still
/// absorbs repeated attempts at the same II.
pub(crate) struct HeightsMemo {
    ii_invariant: bool,
    cached: Option<(u32, Vec<i64>)>,
}

impl HeightsMemo {
    pub(crate) fn new(ddg: &Ddg) -> Self {
        Self {
            ii_invariant: ddg.edges().iter().all(|e| e.distance == 0),
            cached: None,
        }
    }

    fn get(&mut self, ddg: &Ddg, ii: u32) -> &[i64] {
        let hit = match &self.cached {
            Some((cached_ii, _)) => self.ii_invariant || *cached_ii == ii,
            None => false,
        };
        if !hit {
            self.cached = Some((ii, heights(ddg, ii)));
        }
        &self.cached.as_ref().expect("just filled").1
    }
}

/// Priority heights: longest path to any sink under `ii`-adjusted weights.
fn heights(ddg: &Ddg, ii: u32) -> Vec<i64> {
    let n = ddg.nodes().len();
    let mut h = vec![0i64; n];
    // Iterate to fixpoint; bounded because a feasible ii admits no positive
    // cycle (and we cap rounds regardless).
    for _ in 0..n {
        let mut changed = false;
        for e in ddg.edges() {
            let w = i64::from(e.latency) - i64::from(ii) * i64::from(e.distance);
            let cand = h[e.to] + w;
            if cand > h[e.from] {
                h[e.from] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{Kernel, KernelBuilder, Scalar, Ty};
    use stream_vlsi::Shape;

    fn schedule(k: &Kernel, m: &Machine) -> (ModuloSchedule, MiiBounds, Ddg) {
        let ddg = Ddg::build(k, m);
        let (s, b) = modulo_schedule(&ddg, m).expect("schedulable");
        (s, b, ddg)
    }

    fn alu_chain(n_ops: usize, independent: bool) -> Kernel {
        let mut b = KernelBuilder::new("alu");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(s);
        let mut acc = x;
        for _ in 0..n_ops {
            acc = if independent {
                b.add(x, x)
            } else {
                b.add(acc, acc)
            };
        }
        b.write(out, acc);
        b.finish().unwrap()
    }

    #[test]
    fn independent_ops_reach_res_mii() {
        let k = alu_chain(20, true);
        let m = Machine::baseline();
        let (s, b, ddg) = schedule(&k, &m);
        assert_eq!(b.res_mii, 4); // 20 adds over 5 ALUs
        assert_eq!(s.ii, 4);
        assert_eq!(s.verify(&ddg, &m), Ok(()));
    }

    #[test]
    fn dependent_chain_still_pipelines_to_mii() {
        // A serial chain within the iteration has no loop-carried cycle, so
        // modulo scheduling overlaps iterations and reaches ResMII.
        let k = alu_chain(10, false);
        let m = Machine::baseline();
        let (s, b, ddg) = schedule(&k, &m);
        assert_eq!(b.res_mii, 2);
        assert_eq!(s.ii, 2);
        // But the schedule is deep: ~10 chained 4-cycle adds.
        assert!(s.length(&ddg) >= 40);
        assert!(s.stages() > 5);
    }

    #[test]
    fn accumulator_forces_rec_mii() {
        let mut b = KernelBuilder::new("acc");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let acc = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        b.write(out, sum);
        let k = b.finish().unwrap();
        let m = Machine::baseline();
        let (s, bounds, ddg) = schedule(&k, &m);
        assert_eq!(bounds.rec_mii, 4);
        assert_eq!(s.ii, 4);
        assert_eq!(s.verify(&ddg, &m), Ok(()));
    }

    #[test]
    fn sb_port_pressure_binds_wide_records() {
        // 16 reads of one stream: the single SB port serializes them.
        let mut b = KernelBuilder::new("wide");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let mut acc = b.read(s);
        for _ in 0..15 {
            let x = b.read(s);
            acc = b.add(acc, x);
        }
        b.write(out, acc);
        let k = b.finish().unwrap();
        let m = Machine::baseline();
        let (s, bounds, _) = schedule(&k, &m);
        // 16 pops in order with a distance-1 wrap edge -> RecMII >= 16.
        assert!(bounds.rec_mii >= 16);
        assert!(s.ii >= 16);
    }

    #[test]
    fn more_alus_reduce_ii() {
        let k = alu_chain(40, true);
        let m5 = Machine::paper(Shape::new(8, 5));
        let m10 = Machine::paper(Shape::new(8, 10));
        let ii5 = schedule(&k, &m5).0.ii;
        let ii10 = schedule(&k, &m10).0.ii;
        assert_eq!(ii5, 8);
        assert_eq!(ii10, 4);
    }

    #[test]
    fn register_estimate_grows_with_overlap() {
        let k = alu_chain(10, false);
        let m = Machine::baseline();
        let (s, _, ddg) = schedule(&k, &m);
        let regs = s.register_estimate(&ddg);
        // Deep pipeline, II 2 -> many live copies.
        assert!(regs > 10, "regs = {regs}");
    }

    #[test]
    fn empty_kernel_schedules_trivially() {
        let mut b = KernelBuilder::new("nop");
        let _s = b.in_stream(Ty::I32);
        let k = b.finish().unwrap();
        let m = Machine::baseline();
        let ddg = Ddg::build(&k, &m);
        let (s, _) = modulo_schedule(&ddg, &m).unwrap();
        assert_eq!(s.times.len(), 0);
        assert_eq!(s.stages(), 1);
    }

    #[test]
    fn verify_rejects_bogus_schedule() {
        let k = alu_chain(4, false);
        let m = Machine::baseline();
        let ddg = Ddg::build(&k, &m);
        let bogus = ModuloSchedule {
            ii: 1,
            times: vec![0; ddg.nodes().len()],
        };
        assert!(bogus.verify(&ddg, &m).is_err());
    }
}
