#![warn(missing_docs)]
//! VLIW kernel scheduler for stream processors.
//!
//! Reimplements the compilation step of the paper's Section 5 methodology:
//! kernels (from `stream-ir`) are compiled for each machine configuration
//! with **iterative modulo scheduling** (software pipelining) plus a **loop
//! unrolling** search, and kernel inner-loop performance is read off the
//! resulting schedule statically — elements per cycle is
//! `unroll / initiation-interval`.
//!
//! The pipeline is:
//!
//! 1. [`Ddg::build`] — dependence graph with latencies from the machine's
//!    delay model (including the extra pipeline stages large intracluster
//!    switches impose, and the pipelined intercluster COMM latency),
//! 2. [`MiiBounds::compute`] — ResMII / RecMII lower bounds,
//! 3. [`modulo_schedule`] — Rau-style iterative modulo scheduling,
//! 4. [`CompiledKernel::compile`] — unroll-factor search under LRF register
//!    capacity and microcode-size constraints.
//!
//! # Examples
//!
//! ```
//! use stream_ir::{KernelBuilder, Ty};
//! use stream_machine::Machine;
//! use stream_sched::CompiledKernel;
//!
//! let mut b = KernelBuilder::new("axpy");
//! let xs = b.in_stream(Ty::F32);
//! let out = b.out_stream(Ty::F32);
//! let a = b.const_f(3.0);
//! let x = b.read(xs);
//! let y = b.mul(a, x);
//! b.write(out, y);
//! let kernel = b.finish()?;
//!
//! let compiled = CompiledKernel::compile_default(&kernel, &Machine::baseline())?;
//! assert!(compiled.elements_per_cycle_per_cluster() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod check;
mod ddg;
mod mii;
mod modulo;
mod perf;
mod persist;

pub use check::{check_schedule, dep_graph};
pub use ddg::{Ddg, Edge, EdgeKind, Node};
pub use mii::{rec_mii, res_mii, res_mii_for, MiiBounds};
pub use modulo::{modulo_schedule, schedule_at_ii, ModuloSchedule};
pub use perf::{CompileOptions, CompiledKernel, ScheduleError, SearchMemo};
pub use persist::ScheduleRecipe;
