//! Minimum initiation interval bounds: resource-constrained (ResMII) and
//! recurrence-constrained (RecMII).

use crate::Ddg;
use stream_machine::{FuKind, Machine};

/// The two lower bounds on a modulo schedule's initiation interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiiBounds {
    /// Resource bound: the most oversubscribed functional-unit kind.
    pub res_mii: u32,
    /// Recurrence bound: the tightest latency/distance cycle.
    pub rec_mii: u32,
}

impl MiiBounds {
    /// Computes both bounds for `ddg` on `machine`.
    pub fn compute(ddg: &Ddg, machine: &Machine) -> Self {
        Self {
            res_mii: res_mii(ddg, machine),
            rec_mii: rec_mii(ddg),
        }
    }

    /// The minimum initiation interval, `max(ResMII, RecMII)`, at least 1.
    pub fn mii(&self) -> u32 {
        self.res_mii.max(self.rec_mii).max(1)
    }
}

/// Resource-constrained MII: for each functional-unit kind,
/// `ceil(demand / available)`.
pub fn res_mii(ddg: &Ddg, machine: &Machine) -> u32 {
    ddg.fu_demand()
        .into_iter()
        .map(|(kind, demand)| {
            let avail = machine.fu_count(kind).max(1);
            demand.div_ceil(avail)
        })
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Resource-constrained MII restricted to one functional-unit kind (useful
/// for reporting which resource binds).
pub fn res_mii_for(ddg: &Ddg, machine: &Machine, kind: FuKind) -> u32 {
    let demand = ddg.fu_demand().get(&kind).copied().unwrap_or(0);
    demand.div_ceil(machine.fu_count(kind).max(1))
}

/// Recurrence-constrained MII: the smallest `ii` such that no dependence
/// cycle has positive slack deficit, i.e. for every cycle,
/// `sum(latency) <= ii * sum(distance)`.
///
/// Uses a longest-path feasibility check (Bellman-Ford over edge weights
/// `latency - ii * distance`; a positive cycle means `ii` is infeasible) and
/// binary-searches the smallest feasible `ii`.
pub fn rec_mii(ddg: &Ddg) -> u32 {
    // Upper bound: sum of all latencies is always feasible.
    let hi: u64 = ddg.edges().iter().map(|e| u64::from(e.latency)).sum();
    if hi == 0 {
        return 1;
    }
    let (mut lo, mut hi) = (1u64, hi.max(1));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(ddg, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo as u32
}

/// True if no dependence cycle exceeds `ii`-paced slack (longest-path check).
fn feasible(ddg: &Ddg, ii: u64) -> bool {
    let n = ddg.nodes().len();
    if n == 0 {
        return true;
    }
    // Longest-path Bellman-Ford from a virtual source at distance 0 to all.
    let mut dist = vec![0i64; n];
    for _round in 0..n {
        let mut changed = false;
        for e in ddg.edges() {
            let w = i64::from(e.latency) - (ii as i64) * i64::from(e.distance);
            let cand = dist[e.from] + w;
            if cand > dist[e.to] {
                dist[e.to] = cand;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
    // Still relaxing after n rounds: positive cycle.
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{KernelBuilder, Scalar, Ty};
    use stream_machine::Machine;
    use stream_vlsi::Shape;

    fn ddg_for(k: &stream_ir::Kernel, m: &Machine) -> Ddg {
        Ddg::build(k, m)
    }

    fn alu_heavy(n_ops: usize) -> stream_ir::Kernel {
        // n_ops independent float adds per element.
        let mut b = KernelBuilder::new("alu");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(s);
        let mut acc = x;
        for _ in 0..n_ops {
            acc = b.add(acc, x);
        }
        b.write(out, acc);
        b.finish().unwrap()
    }

    #[test]
    fn res_mii_scales_inversely_with_alus() {
        let k = alu_heavy(20);
        let m5 = Machine::paper(Shape::new(8, 5));
        let m10 = Machine::paper(Shape::new(8, 10));
        let r5 = res_mii(&ddg_for(&k, &m5), &m5);
        let r10 = res_mii(&ddg_for(&k, &m10), &m10);
        assert_eq!(r5, 4); // ceil(20/5)
        assert_eq!(r10, 2); // ceil(20/10)
    }

    #[test]
    fn rec_mii_of_dag_is_one() {
        // alu_heavy is a chain within one iteration but carries nothing
        // across iterations except the stream-order self-chains (1 access
        // per stream -> self edge latency 1 distance 1 -> RecMII 1).
        let k = alu_heavy(4);
        let m = Machine::baseline();
        assert_eq!(rec_mii(&ddg_for(&k, &m)), 1);
    }

    #[test]
    fn accumulator_sets_rec_mii_to_its_latency() {
        let mut b = KernelBuilder::new("acc");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let acc = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        b.write(out, sum);
        let k = b.finish().unwrap();
        let m = Machine::baseline();
        // fadd latency 4 at distance 1.
        assert_eq!(rec_mii(&ddg_for(&k, &m)), 4);
    }

    #[test]
    fn two_iteration_distance_halves_rec_mii() {
        // Two interleaved accumulators via distance-2 recurrence: a
        // recurrence chained through another recurrence.
        let mut b = KernelBuilder::new("acc2");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let r1 = b.recurrence(Scalar::F32(0.0));
        let r2 = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let sum = b.add(r2, x); // uses the value from two iterations ago
        b.bind_next(r1, sum);
        b.bind_next(r2, r1);
        b.write(out, sum);
        let k = b.finish().unwrap();
        let m = Machine::baseline();
        // latency 4 over distance 2 -> RecMII = 2.
        assert_eq!(rec_mii(&ddg_for(&k, &m)), 2);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let k = alu_heavy(20);
        let m = Machine::baseline();
        let bounds = MiiBounds::compute(&ddg_for(&k, &m), &m);
        assert_eq!(bounds.mii(), bounds.res_mii.max(bounds.rec_mii));
        assert!(bounds.mii() >= 1);
    }

    #[test]
    fn res_mii_for_reports_per_kind() {
        let k = alu_heavy(20);
        let m = Machine::baseline();
        let ddg = ddg_for(&k, &m);
        assert_eq!(res_mii_for(&ddg, &m, stream_machine::FuKind::Alu), 4);
        // 2 stream accesses over 7 SB ports.
        assert_eq!(res_mii_for(&ddg, &m, stream_machine::FuKind::SbPort), 1);
        assert_eq!(res_mii_for(&ddg, &m, stream_machine::FuKind::Comm), 0);
    }
}
