//! The persistable form of a compiled schedule.
//!
//! A [`ScheduleRecipe`] is the minimal information that lets a process skip
//! the expensive part of compilation — the unroll search and iterative
//! modulo scheduling — while re-deriving everything else deterministically
//! from the kernel and machine it is rehydrated against: the dependence
//! graph, MII bounds, register estimate, and schedule length are all cheap
//! functions of `(kernel, machine, recipe)`.
//!
//! Rehydration ([`crate::CompiledKernel::rehydrate`]) is *validating*: the
//! recipe's schedule is checked for dependence and resource legality against
//! a freshly built DDG before it is accepted, so a recipe from a corrupted,
//! stale, or even adversarial cache entry can never produce an illegal
//! `CompiledKernel` — the worst outcome is a rejected recipe and a
//! recompile. This is the same translation-validation posture the tape
//! compiler takes (DESIGN.md §12), applied to the persistent cache.

/// The compact, persistable essence of one compiled schedule: the chosen
/// unroll factor, the initiation interval, and the per-DDG-node start
/// times. Everything else on a [`crate::CompiledKernel`] is re-derived at
/// rehydration time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRecipe {
    /// The unroll factor the compile-time search chose.
    pub unroll: u32,
    /// The initiation interval of the chosen schedule.
    pub ii: u32,
    /// Start time per DDG node, in the node order of the DDG built from
    /// the unrolled kernel on the target machine.
    pub times: Vec<u32>,
}

impl ScheduleRecipe {
    /// Serializes the recipe to a self-delimiting little-endian byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.times.len() * 4);
        out.extend_from_slice(&self.unroll.to_le_bytes());
        out.extend_from_slice(&self.ii.to_le_bytes());
        out.extend_from_slice(&(self.times.len() as u32).to_le_bytes());
        for &t in &self.times {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out
    }

    /// Decodes a recipe previously produced by [`encode`](Self::encode).
    ///
    /// Returns `None` on any structural problem (short buffer, trailing
    /// bytes, or an advertised length the buffer cannot hold) — callers
    /// treat an undecodable recipe as a cache miss.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let fixed = 12usize;
        if bytes.len() < fixed {
            return None;
        }
        let u32_at = |i: usize| -> u32 {
            u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4-byte slice"))
        };
        let unroll = u32_at(0);
        let ii = u32_at(4);
        let n = u32_at(8) as usize;
        if bytes.len() != fixed + n.checked_mul(4)? {
            return None;
        }
        let times = (0..n).map(|i| u32_at(fixed + i * 4)).collect();
        Some(Self { unroll, ii, times })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let r = ScheduleRecipe {
            unroll: 4,
            ii: 7,
            times: vec![0, 3, 9, 14, 2],
        };
        assert_eq!(ScheduleRecipe::decode(&r.encode()), Some(r));
        let empty = ScheduleRecipe {
            unroll: 1,
            ii: 1,
            times: vec![],
        };
        assert_eq!(ScheduleRecipe::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn rejects_malformed_buffers() {
        let good = ScheduleRecipe {
            unroll: 2,
            ii: 3,
            times: vec![1, 2, 3],
        }
        .encode();
        // Truncations at every length.
        for keep in 0..good.len() {
            assert_eq!(ScheduleRecipe::decode(&good[..keep]), None, "keep {keep}");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert_eq!(ScheduleRecipe::decode(&long), None);
        // Length field larger than the buffer.
        let mut lying = good;
        lying[8] = 200;
        assert_eq!(ScheduleRecipe::decode(&lying), None);
    }
}
