//! Kernel compilation and static inner-loop performance analysis
//! (paper Section 5.1: kernels are recompiled per machine; inner-loop
//! performance is measured by static analysis of the compiled schedule).

use crate::modulo::{schedule_at_ii_memo, HeightsMemo};
use crate::{Ddg, MiiBounds, ModuloSchedule};
use std::error::Error;
use std::fmt;
use stream_ir::{unroll, Kernel};
use stream_machine::Machine;

/// Derived per-unroll-candidate artifacts, cached across compilations.
struct MemoEntry {
    ddg: Ddg,
    bounds: MiiBounds,
    heights: HeightsMemo,
}

/// Memoizes the per-unroll-factor derivations of the compile search —
/// the unrolled kernel's dependence graph, its ResMII/RecMII bounds, and
/// the scheduler's priority heights — so they are computed once per
/// `(kernel, machine, unroll)` no matter how many compilations probe them.
///
/// A single [`CompiledKernel::compile`] call builds each candidate's graph
/// exactly once either way; the memo pays off when the *same* kernel and
/// machine are compiled repeatedly under different option sets — the
/// auto-tuner's unroll probes, or a cost model asking for [`MiiBounds`]
/// before deciding whether to schedule at all. Holders must keep one memo
/// per `(kernel, machine)` pair; this is asserted in debug builds.
///
/// # Examples
///
/// ```
/// use stream_ir::{KernelBuilder, Ty};
/// use stream_machine::Machine;
/// use stream_sched::{CompileOptions, CompiledKernel, SearchMemo};
///
/// let mut b = KernelBuilder::new("double");
/// let s = b.in_stream(Ty::F32);
/// let o = b.out_stream(Ty::F32);
/// let x = b.read(s);
/// let y = b.add(x, x);
/// b.write(o, y);
/// let kernel = b.finish()?;
/// let machine = Machine::baseline();
///
/// let mut memo = SearchMemo::new();
/// for u in [1u32, 2, 4] {
///     let opts = CompileOptions::new().unroll_factors([u]);
///     let _ = CompiledKernel::compile_with_memo(&kernel, &machine, &opts, &mut memo);
/// }
/// // Each factor's dependence graph was derived exactly once.
/// assert_eq!(memo.ddg_builds(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Default)]
pub struct SearchMemo {
    /// `(factor, entry)`; `None` marks a factor whose unroll failed.
    entries: Vec<(u32, Option<MemoEntry>)>,
    ddg_builds: u64,
    #[cfg(debug_assertions)]
    owner: Option<(String, String)>,
}

impl SearchMemo {
    /// An empty memo; derivations fill in on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many dependence graphs this memo has built — the work the memo
    /// exists to avoid repeating.
    pub fn ddg_builds(&self) -> u64 {
        self.ddg_builds
    }

    /// The ResMII/RecMII bounds of `kernel` unrolled by `u` on `machine`,
    /// without running the scheduler. `None` if the kernel cannot be
    /// unrolled by `u`. This is the cost-model entry point: an upper bound
    /// on elements/cycle/cluster is `u / bounds.mii()`.
    pub fn bounds(&mut self, kernel: &Kernel, machine: &Machine, u: u32) -> Option<MiiBounds> {
        self.entry(kernel, machine, u).map(|e| e.bounds)
    }

    fn entry(&mut self, kernel: &Kernel, machine: &Machine, u: u32) -> Option<&mut MemoEntry> {
        #[cfg(debug_assertions)]
        {
            let id = (kernel.name().to_string(), machine.to_string());
            match &self.owner {
                None => self.owner = Some(id),
                Some(owner) => debug_assert_eq!(
                    *owner, id,
                    "a SearchMemo serves exactly one (kernel, machine) pair"
                ),
            }
        }
        if let Some(i) = self.entries.iter().position(|(f, _)| *f == u) {
            return self.entries[i].1.as_mut();
        }
        let built = unroll(kernel, u).ok().map(|unrolled| {
            let ddg = Ddg::build(&unrolled, machine);
            self.ddg_builds += 1;
            let bounds = MiiBounds::compute(&ddg, machine);
            let heights = HeightsMemo::new(&ddg);
            MemoEntry {
                ddg,
                bounds,
                heights,
            }
        });
        self.entries.push((u, built));
        self.entries.last_mut().expect("just pushed").1.as_mut()
    }
}

/// Compilation error: no legal schedule was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// Kernel name.
    pub kernel: String,
    /// Machine the kernel was compiled for.
    pub machine: String,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no legal modulo schedule for kernel {} on {}",
            self.kernel, self.machine
        )
    }
}

impl Error for ScheduleError {}

/// Compilation options.
///
/// Construct with [`CompileOptions::new`] (or `Default`) and refine with the
/// chainable builder methods; the struct is `#[non_exhaustive]` so new knobs
/// can be added without breaking callers:
///
/// ```
/// use stream_sched::CompileOptions;
///
/// let opts = CompileOptions::new().without_software_pipelining().verify(true);
/// assert!(!opts.software_pipelining);
/// assert!(opts.verify);
/// ```
///
/// Options are cheap to hash and compare (`Hash`/`Eq`), so they can key
/// compiled-kernel caches alongside the kernel and machine identity.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompileOptions {
    /// Unroll factors to try; the best elements/cycle wins.
    pub unroll_factors: Vec<u32>,
    /// Enforce the cluster's LRF register capacity by deepening the II when
    /// a schedule holds too many values live.
    pub respect_registers: bool,
    /// Maximum schedule length in VLIW instructions (the microcode store
    /// holds `r_uc = 2048`).
    pub max_length: u32,
    /// Software pipelining (modulo scheduling). Disabling it runs each loop
    /// iteration to completion before starting the next — the ablation
    /// quantifying how much the stream methodology depends on SWP.
    pub software_pipelining: bool,
    /// Run every candidate schedule through the independent verifier in
    /// `stream-verify` and discard candidates it rejects. On by default in
    /// debug builds; opt in explicitly for release-mode runs (the repro
    /// harness's `verify` experiment does).
    pub verify: bool,
}

impl CompileOptions {
    /// Default options (same as `Default`): unroll search over 1/2/4/8,
    /// register capacity respected, software pipelining on, verification on
    /// in debug builds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the set of unroll factors the search tries.
    #[must_use]
    pub fn unroll_factors(mut self, factors: impl Into<Vec<u32>>) -> Self {
        self.unroll_factors = factors.into();
        self
    }

    /// Sets whether the LRF register capacity is enforced.
    #[must_use]
    pub fn respect_registers(mut self, on: bool) -> Self {
        self.respect_registers = on;
        self
    }

    /// Sets the maximum schedule length in VLIW instructions.
    #[must_use]
    pub fn max_length(mut self, limit: u32) -> Self {
        self.max_length = limit;
        self
    }

    /// Sets whether software pipelining (modulo scheduling) is used.
    #[must_use]
    pub fn software_pipelining(mut self, on: bool) -> Self {
        self.software_pipelining = on;
        self
    }

    /// Disables software pipelining (the Section 5.1 ablation); equivalent
    /// to `.software_pipelining(false)`.
    #[must_use]
    pub fn without_software_pipelining(self) -> Self {
        self.software_pipelining(false)
    }

    /// Sets whether every candidate schedule runs through the independent
    /// verifier in `stream-verify`.
    #[must_use]
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            unroll_factors: vec![1, 2, 4, 8],
            respect_registers: true,
            max_length: 2048,
            software_pipelining: true,
            verify: cfg!(debug_assertions),
        }
    }
}

/// A kernel compiled for one machine: the chosen unroll factor, its modulo
/// schedule, and the static performance numbers derived from them.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    name: String,
    unroll: u32,
    schedule: ModuloSchedule,
    ddg: Ddg,
    bounds: MiiBounds,
    schedule_length: u32,
    registers: u32,
    base_alu_ops: u32,
    clusters: u32,
    pipeline_fill: u32,
}

impl CompiledKernel {
    /// Compiles `kernel` for `machine`: builds the dependence graph for each
    /// candidate unroll factor, modulo-schedules it, and keeps the fastest
    /// legal result.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if no candidate produces a legal schedule
    /// (which indicates a kernel/machine mismatch such as zero functional
    /// units — not expected for valid machines).
    pub fn compile(
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
    ) -> Result<Self, ScheduleError> {
        Self::compile_with_memo(kernel, machine, opts, &mut SearchMemo::new())
    }

    /// [`CompiledKernel::compile`] drawing its per-unroll derivations (DDG,
    /// MII bounds, priority heights) from `memo` instead of rebuilding them.
    /// Produces exactly the schedule `compile` would — the memo only caches
    /// deterministic derivations — but a caller probing several option sets
    /// over one `(kernel, machine)` pair (the auto-tuner's search) derives
    /// each unroll candidate once across the whole sequence.
    ///
    /// # Errors
    ///
    /// As [`CompiledKernel::compile`].
    pub fn compile_with_memo(
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
        memo: &mut SearchMemo,
    ) -> Result<Self, ScheduleError> {
        let mut compile_span = stream_trace::span("sched", "compile");
        compile_span.arg("kernel", kernel.name());
        let base_alu_ops = kernel.stats().alu_ops;
        let mut best: Option<CompiledKernel> = None;
        for &u in &opts.unroll_factors {
            let Some(entry) = memo.entry(kernel, machine, u) else {
                continue;
            };
            let bounds = entry.bounds;
            stream_trace::record("sched.res_mii", u64::from(bounds.res_mii));
            stream_trace::record("sched.rec_mii", u64::from(bounds.rec_mii));

            // ResMII/RecMII prune: elements/cycle is at most `u / MII`, so
            // a candidate that cannot beat the incumbent even at its II
            // lower bound is skipped before the (expensive) scheduling.
            // The margin mirrors the `better` predicate below — a pruned
            // candidate could never have won either of its branches.
            if let Some(b) = &best {
                let upper = f64::from(u) / f64::from(bounds.mii());
                if upper <= b.elements_per_cycle_per_cluster() * 0.9999 {
                    continue;
                }
            }

            // II search upward from MII, sharing priority heights across
            // attempts (and with the register-deepening loop below). With
            // an incumbent in hand the search stops early at the deepest II
            // that could still beat it: past that point even a successful
            // schedule loses both branches of the `better` predicate below,
            // so truncating the search never changes the chosen result.
            let mii = bounds.mii();
            let mut hi = mii.saturating_mul(2) + 32;
            if let Some(b) = &best {
                let bb = b.elements_per_cycle_per_cluster() * 0.9999;
                let mut cap = (f64::from(u) / bb) as u32;
                while cap > 0 && f64::from(u) / f64::from(cap) <= bb {
                    cap -= 1;
                }
                hi = hi.min(cap);
            }
            let ddg = &entry.ddg;
            let heights = &mut entry.heights;
            let Some(mut sched) =
                (mii..=hi).find_map(|ii| schedule_at_ii_memo(ddg, machine, ii, heights))
            else {
                continue;
            };

            // No-SWP ablation: stretch the initiation interval to the flat
            // schedule length so iterations never overlap. (Dependence and
            // resource legality are preserved: every op finishes within one
            // interval and distinct cycles stay distinct modulo the longer
            // II.)
            if !opts.software_pipelining {
                let flat = sched.length(ddg).max(1);
                sched = crate::ModuloSchedule {
                    ii: flat,
                    times: sched.times.clone(),
                };
                debug_assert_eq!(sched.verify(ddg, machine), Ok(()));
            }

            // Register pressure: deepen the II (less iteration overlap, so
            // fewer rotating copies) until the estimate fits. A flat
            // schedule is reached at II = schedule length; past that nothing
            // improves.
            if opts.respect_registers {
                let cap = machine.register_capacity();
                while sched.register_estimate(ddg) > cap {
                    let next_ii = (sched.ii + sched.ii.div_ceil(4))
                        .min(sched.length(ddg))
                        .min(opts.max_length);
                    if next_ii <= sched.ii {
                        break;
                    }
                    match schedule_at_ii_memo(ddg, machine, next_ii, heights) {
                        Some(s) => sched = s,
                        None => break,
                    }
                }
                if sched.register_estimate(ddg) > cap {
                    continue;
                }
            }

            let length = sched.length(ddg);
            if length > opts.max_length {
                continue;
            }

            if opts.verify {
                let report = crate::check_schedule(ddg, &sched, machine);
                debug_assert!(
                    !report.has_errors(),
                    "scheduler produced an illegal schedule for {}:\n{report}",
                    kernel.name()
                );
                if report.has_errors() {
                    continue;
                }
            }

            let cand = CompiledKernel {
                name: kernel.name().to_string(),
                unroll: u,
                registers: sched.register_estimate(ddg),
                schedule_length: length,
                schedule: sched,
                ddg: ddg.clone(),
                bounds,
                base_alu_ops,
                clusters: machine.clusters(),
                pipeline_fill: machine.pipeline_fill_cycles(),
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    let a = cand.elements_per_cycle_per_cluster();
                    let bb = b.elements_per_cycle_per_cluster();
                    a > bb * 1.0001 || (a > bb * 0.9999 && cand.unroll < b.unroll)
                }
            };
            if better {
                best = Some(cand);
            }
        }
        if let Some(b) = &best {
            compile_span.arg("ii", b.schedule.ii);
            compile_span.arg("unroll", b.unroll);
            stream_trace::record("sched.ii", u64::from(b.schedule.ii));
        }
        best.ok_or_else(|| ScheduleError {
            kernel: kernel.name().to_string(),
            machine: machine.to_string(),
        })
    }

    /// Compiles with default options.
    ///
    /// # Errors
    ///
    /// As [`CompiledKernel::compile`].
    pub fn compile_default(kernel: &Kernel, machine: &Machine) -> Result<Self, ScheduleError> {
        Self::compile(kernel, machine, &CompileOptions::default())
    }

    /// The persistable essence of this compilation: unroll factor, II, and
    /// node start times (see [`crate::ScheduleRecipe`]). Everything else is
    /// re-derived deterministically at [`CompiledKernel::rehydrate`] time.
    pub fn recipe(&self) -> crate::ScheduleRecipe {
        crate::ScheduleRecipe {
            unroll: self.unroll,
            ii: self.schedule.ii,
            times: self.schedule.times.clone(),
        }
    }

    /// Reconstructs a compiled kernel from a previously persisted recipe
    /// **without running the scheduler**, validating the recipe against a
    /// freshly built dependence graph first.
    ///
    /// Returns `None` — "recompile, please" — if the recipe does not fit
    /// this `(kernel, machine, opts)` triple: wrong node count, an illegal
    /// schedule (dependence or resource violation), a register estimate
    /// over capacity while `opts.respect_registers`, a schedule longer than
    /// `opts.max_length`, overlapped iterations while software pipelining
    /// is disabled, or a verifier rejection while `opts.verify`. A recipe
    /// accepted here yields a `CompiledKernel` indistinguishable from the
    /// one `compile` would have produced for the same inputs, because every
    /// derived field is a deterministic function of the validated parts.
    pub fn rehydrate(
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
        recipe: &crate::ScheduleRecipe,
    ) -> Option<Self> {
        let mut span = stream_trace::span("sched", "rehydrate");
        span.arg("kernel", kernel.name());
        if recipe.ii == 0 || !opts.unroll_factors.contains(&recipe.unroll) {
            return None;
        }
        let unrolled = unroll(kernel, recipe.unroll).ok()?;
        let ddg = Ddg::build(&unrolled, machine);
        if recipe.times.len() != ddg.nodes().len() {
            return None;
        }
        let sched = ModuloSchedule {
            ii: recipe.ii,
            times: recipe.times.clone(),
        };
        sched.verify(&ddg, machine).ok()?;
        let length = sched.length(&ddg);
        if length > opts.max_length {
            return None;
        }
        if !opts.software_pipelining && sched.stages() != 1 {
            return None;
        }
        let registers = sched.register_estimate(&ddg);
        if opts.respect_registers && registers > machine.register_capacity() {
            return None;
        }
        if opts.verify {
            let report = crate::check_schedule(&ddg, &sched, machine);
            if report.has_errors() {
                return None;
            }
        }
        let bounds = MiiBounds::compute(&ddg, machine);
        span.arg("ii", sched.ii);
        Some(Self {
            name: kernel.name().to_string(),
            unroll: recipe.unroll,
            registers,
            schedule_length: length,
            schedule: sched,
            ddg,
            bounds,
            base_alu_ops: kernel.stats().alu_ops,
            clusters: machine.clusters(),
            pipeline_fill: machine.pipeline_fill_cycles(),
        })
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unroll factor the compiler chose.
    pub fn unroll_factor(&self) -> u32 {
        self.unroll
    }

    /// The initiation interval of the software-pipelined inner loop.
    pub fn ii(&self) -> u32 {
        self.schedule.ii
    }

    /// Software-pipeline stage count.
    pub fn stages(&self) -> u32 {
        self.schedule.stages()
    }

    /// Flat schedule length (VLIW instructions for one unrolled iteration).
    pub fn schedule_length(&self) -> u32 {
        self.schedule_length
    }

    /// The MII bounds that constrained this schedule.
    pub fn bounds(&self) -> MiiBounds {
        self.bounds
    }

    /// Estimated registers live per cluster.
    pub fn registers(&self) -> u32 {
        self.registers
    }

    /// Stream records processed per cycle per cluster in steady state —
    /// the paper's kernel inner-loop performance metric.
    pub fn elements_per_cycle_per_cluster(&self) -> f64 {
        f64::from(self.unroll) / f64::from(self.schedule.ii)
    }

    /// ALU operations per cycle per cluster in steady state.
    pub fn alu_ops_per_cycle_per_cluster(&self) -> f64 {
        f64::from(self.base_alu_ops) * self.elements_per_cycle_per_cluster()
    }

    /// Machine-wide ALU operations per cycle in steady state (GOPS at
    /// 1 GHz).
    pub fn alu_ops_per_cycle(&self) -> f64 {
        f64::from(self.clusters) * self.alu_ops_per_cycle_per_cluster()
    }

    /// Machine-wide records per cycle in steady state.
    pub fn elements_per_cycle(&self) -> f64 {
        f64::from(self.clusters) * self.elements_per_cycle_per_cluster()
    }

    /// Cycles for one kernel invocation over `records` stream records —
    /// including the per-call overheads that produce the paper's short-
    /// stream effects (Section 5.3): microcontroller/cluster pipeline fill
    /// and software-pipeline priming, plus the drain of the last iteration.
    pub fn call_cycles(&self, records: u64) -> u64 {
        let per_call = u64::from(self.unroll) * u64::from(self.clusters);
        let iterations = records.div_ceil(per_call).max(1);
        u64::from(self.pipeline_fill)
            + (iterations - 1) * u64::from(self.schedule.ii)
            + u64::from(self.schedule_length)
    }

    /// Steady-state-only cycles for `records` (no per-call overhead); the
    /// denominator of kernel inner-loop speedup comparisons.
    pub fn inner_loop_cycles(&self, records: u64) -> u64 {
        let per_call = u64::from(self.unroll) * u64::from(self.clusters);
        records.div_ceil(per_call).max(1) * u64::from(self.schedule.ii)
    }

    /// The modulo schedule itself.
    pub fn schedule(&self) -> &ModuloSchedule {
        &self.schedule
    }

    /// The dependence graph the schedule was built over.
    pub fn ddg(&self) -> &Ddg {
        &self.ddg
    }

    /// Human-readable VLIW listing of the steady-state kernel: one line per
    /// modulo slot showing the operations issued there, each tagged with
    /// its value id and software-pipeline stage.
    ///
    /// # Examples
    ///
    /// Printing a compiled kernel's listing shows how the scheduler packed
    /// the functional units:
    ///
    /// ```
    /// use stream_ir::{KernelBuilder, Ty};
    /// use stream_machine::Machine;
    /// use stream_sched::CompiledKernel;
    ///
    /// let mut b = KernelBuilder::new("double");
    /// let s = b.in_stream(Ty::I32);
    /// let o = b.out_stream(Ty::I32);
    /// let x = b.read(s);
    /// let y = b.add(x, x);
    /// b.write(o, y);
    /// let c = CompiledKernel::compile_default(&b.finish()?, &Machine::baseline())?;
    /// let listing = c.listing();
    /// assert!(listing.contains("slot"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} II={} unroll=x{} stages={} (ResMII={}, RecMII={})",
            self.name,
            self.schedule.ii,
            self.unroll,
            self.stages(),
            self.bounds.res_mii,
            self.bounds.rec_mii
        );
        for slot in 0..self.schedule.ii {
            let mut ops: Vec<String> = Vec::new();
            for (i, node) in self.ddg.nodes().iter().enumerate() {
                let t = self.schedule.times[i];
                if t % self.schedule.ii == slot {
                    ops.push(format!(
                        "{}[{}]@s{}",
                        node.class,
                        node.value,
                        t / self.schedule.ii
                    ));
                }
            }
            let _ = writeln!(out, "  slot {slot:>3}: {}", ops.join("  "));
        }
        out
    }
}

impl fmt::Display for CompiledKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: II={} x{} ({} stages, {} regs, {:.3} elem/cycle/cluster)",
            self.name,
            self.schedule.ii,
            self.unroll,
            self.stages(),
            self.registers,
            self.elements_per_cycle_per_cluster()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleRecipe;
    use stream_ir::{KernelBuilder, Scalar, Ty};
    use stream_vlsi::Shape;

    fn mul_add_kernel(n_pairs: usize) -> Kernel {
        // Independent multiply-adds: pure DLP, unrolls cleanly.
        let mut b = KernelBuilder::new("fma_chain");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(s);
        let mut acc = b.mul(x, x);
        for _ in 0..n_pairs {
            let m = b.mul(x, x);
            acc = b.add(acc, m);
        }
        b.write(out, acc);
        b.finish().unwrap()
    }

    #[test]
    fn compile_reaches_resource_bound() {
        let k = mul_add_kernel(7); // 15 ALU ops
        let m = Machine::baseline();
        let c = CompiledKernel::compile_default(&k, &m).unwrap();
        // 15 ALU ops over 5 ALUs: 3 cycles per element, give or take
        // rounding from the chosen unroll.
        let e = c.elements_per_cycle_per_cluster();
        assert!(e > 0.3 && e <= 0.34, "elements/cycle = {e}");
    }

    #[test]
    fn unrolling_smooths_ceiling_effects() {
        // 6 ALU ops over 5 ALUs: unrolled x4 -> 24 ops over 5 ALUs ~ II 5,
        // 0.8 elem/cycle vs 0.5 without unrolling.
        let mut b = KernelBuilder::new("six");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(s);
        let a = b.add(x, x);
        let b2 = b.add(x, x);
        let c2 = b.add(x, x);
        let d = b.mul(a, b2);
        let e = b.mul(c2, x);
        let f = b.add(d, e);
        b.write(out, f);
        let k = b.finish().unwrap();
        let m = Machine::baseline();
        let c = CompiledKernel::compile_default(&k, &m).unwrap();
        assert!(c.unroll_factor() > 1);
        assert!(c.elements_per_cycle_per_cluster() > 0.5);
    }

    #[test]
    fn speedup_with_more_alus_is_near_linear() {
        let k = mul_add_kernel(29); // 59 ALU ops, convolve-ish
        let m2 = Machine::paper(Shape::new(8, 2));
        let m5 = Machine::paper(Shape::new(8, 5));
        let m10 = Machine::paper(Shape::new(8, 10));
        let p = |m: &Machine| {
            CompiledKernel::compile_default(&k, m)
                .unwrap()
                .elements_per_cycle_per_cluster()
        };
        let (p2, p5, p10) = (p(&m2), p(&m5), p(&m10));
        assert!(p5 / p2 > 2.0 && p5 / p2 < 3.0, "5v2 {}", p5 / p2);
        assert!(p10 / p5 > 1.6 && p10 / p5 <= 2.05, "10v5 {}", p10 / p5);
    }

    #[test]
    fn accumulator_limits_unrolling_gains() {
        // True loop-carried sum: unrolled copies chain, RecMII grows with U,
        // so elements/cycle saturates at 1/latency regardless of N.
        let mut b = KernelBuilder::new("reduce");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let acc = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        b.write(out, sum);
        let k = b.finish().unwrap();
        let m = Machine::paper(Shape::new(8, 10));
        let c = CompiledKernel::compile_default(&k, &m).unwrap();
        // fadd latency 4: at best 1 element per 4 cycles regardless of U.
        assert!(c.elements_per_cycle_per_cluster() <= 0.26);
    }

    #[test]
    fn call_cycles_include_overheads() {
        let k = mul_add_kernel(7);
        let m = Machine::baseline();
        let c = CompiledKernel::compile_default(&k, &m).unwrap();
        let short = c.call_cycles(8);
        let long = c.call_cycles(8000);
        // Long calls amortize: per-record cost much lower.
        let short_per = short as f64 / 8.0;
        let long_per = long as f64 / 8000.0;
        assert!(short_per > 5.0 * long_per);
        // Inner-loop cycles exclude the fixed overheads.
        assert!(c.inner_loop_cycles(8000) < c.call_cycles(8000));
    }

    #[test]
    fn gops_scale_with_clusters() {
        let k = mul_add_kernel(7);
        let c8 = CompiledKernel::compile_default(&k, &Machine::paper(Shape::new(8, 5))).unwrap();
        let c64 = CompiledKernel::compile_default(&k, &Machine::paper(Shape::new(64, 5))).unwrap();
        let ratio = c64.alu_ops_per_cycle() / c8.alu_ops_per_cycle();
        assert!((ratio - 8.0).abs() < 0.75, "ratio {ratio}");
    }

    #[test]
    fn disabling_software_pipelining_costs_throughput() {
        // A latency-dominated chain: SWP hides the latency by overlapping
        // iterations; without it, throughput collapses to 1/makespan.
        let k = mul_add_kernel(7);
        let m = Machine::baseline();
        let swp = CompiledKernel::compile_default(&k, &m).unwrap();
        let flat =
            CompiledKernel::compile(&k, &m, &CompileOptions::new().without_software_pipelining())
                .unwrap();
        assert!(flat.ii() >= flat.stages() * swp.ii());
        assert!(
            swp.elements_per_cycle_per_cluster() > 2.0 * flat.elements_per_cycle_per_cluster(),
            "SWP {} vs flat {}",
            swp.elements_per_cycle_per_cluster(),
            flat.elements_per_cycle_per_cluster()
        );
        // The flat schedule is still legal: one stage, nothing overlaps.
        assert_eq!(flat.stages(), 1);
    }

    #[test]
    fn compile_options_builder_chains_and_hashes() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let opts = CompileOptions::new()
            .unroll_factors([1, 2])
            .respect_registers(false)
            .max_length(512)
            .without_software_pipelining()
            .verify(true);
        assert_eq!(opts.unroll_factors, vec![1, 2]);
        assert!(!opts.respect_registers);
        assert_eq!(opts.max_length, 512);
        assert!(!opts.software_pipelining);
        assert!(opts.verify);
        let hash = |o: &CompileOptions| {
            let mut h = DefaultHasher::new();
            o.hash(&mut h);
            h.finish()
        };
        assert_eq!(
            hash(&CompileOptions::new()),
            hash(&CompileOptions::default())
        );
        assert_ne!(hash(&opts), hash(&CompileOptions::new()));
    }

    #[test]
    fn memoized_compile_matches_fresh_compile() {
        // The memo only caches deterministic derivations, so probing unroll
        // factors one at a time through a shared memo must reproduce the
        // fresh compiles bit for bit — and derive each factor's DDG once.
        let k = mul_add_kernel(7);
        let m = Machine::paper(Shape::new(8, 5));
        let mut memo = SearchMemo::new();
        for u in [1u32, 2, 4, 8, 2, 4] {
            let opts = CompileOptions::new().unroll_factors([u]);
            let warm = CompiledKernel::compile_with_memo(&k, &m, &opts, &mut memo).unwrap();
            let fresh = CompiledKernel::compile(&k, &m, &opts).unwrap();
            assert_eq!(warm.listing(), fresh.listing(), "u={u}");
            assert_eq!(warm.registers(), fresh.registers(), "u={u}");
        }
        assert_eq!(memo.ddg_builds(), 4); // repeats of 2 and 4 were cached

        // The full default search through the same memo still agrees with
        // the uncached path.
        let full = CompiledKernel::compile_with_memo(&k, &m, &CompileOptions::default(), &mut memo)
            .unwrap();
        let fresh = CompiledKernel::compile_default(&k, &m).unwrap();
        assert_eq!(full.listing(), fresh.listing());
        assert_eq!(memo.ddg_builds(), 4);
    }

    #[test]
    fn memo_bounds_answer_without_scheduling() {
        let k = mul_add_kernel(7);
        let m = Machine::baseline();
        let mut memo = SearchMemo::new();
        let b1 = memo.bounds(&k, &m, 1).unwrap();
        let b4 = memo.bounds(&k, &m, 4).unwrap();
        assert!(b4.mii() >= b1.mii());
        assert_eq!(memo.ddg_builds(), 2);
        // The compiled result respects the memo's bound.
        let opts = CompileOptions::new().unroll_factors([4]);
        let c = CompiledKernel::compile_with_memo(&k, &m, &opts, &mut memo).unwrap();
        assert!(c.ii() >= b4.mii());
        assert_eq!(memo.ddg_builds(), 2); // compile reused the cached DDG
    }

    #[test]
    fn display_mentions_ii() {
        let k = mul_add_kernel(3);
        let m = Machine::baseline();
        let c = CompiledKernel::compile_default(&k, &m).unwrap();
        assert!(c.to_string().contains("II="));
    }

    #[test]
    fn rehydrate_reproduces_the_fresh_compile() {
        let k = mul_add_kernel(7);
        let m = Machine::paper(Shape::new(8, 5));
        let opts = CompileOptions::new().verify(true);
        let fresh = CompiledKernel::compile(&k, &m, &opts).unwrap();
        let recipe = fresh.recipe();
        let warm = CompiledKernel::rehydrate(&k, &m, &opts, &recipe)
            .expect("recipe from a fresh compile must rehydrate");
        assert_eq!(warm.ii(), fresh.ii());
        assert_eq!(warm.unroll_factor(), fresh.unroll_factor());
        assert_eq!(warm.registers(), fresh.registers());
        assert_eq!(warm.schedule_length(), fresh.schedule_length());
        assert_eq!(warm.listing(), fresh.listing());
        // And the codec roundtrip survives the disk-byte boundary.
        let decoded = crate::ScheduleRecipe::decode(&recipe.encode()).unwrap();
        assert!(CompiledKernel::rehydrate(&k, &m, &opts, &decoded).is_some());
    }

    #[test]
    fn rehydrate_rejects_bogus_recipes() {
        let k = mul_add_kernel(7);
        let m = Machine::baseline();
        let opts = CompileOptions::new().verify(true);
        let good = CompiledKernel::compile(&k, &m, &opts).unwrap().recipe();

        // Wrong node count (recipe for a different unroll of the kernel).
        let mut short = good.clone();
        short.times.pop();
        assert!(CompiledKernel::rehydrate(&k, &m, &opts, &short).is_none());

        // Dependence-violating times: every op at cycle 0 cannot be legal
        // for a kernel with multiply feeding add.
        let flat = ScheduleRecipe {
            unroll: good.unroll,
            ii: good.ii,
            times: vec![0; good.times.len()],
        };
        assert!(CompiledKernel::rehydrate(&k, &m, &opts, &flat).is_none());

        // Zero II and unlisted unroll factors are structurally invalid.
        let zero = ScheduleRecipe {
            ii: 0,
            ..good.clone()
        };
        assert!(CompiledKernel::rehydrate(&k, &m, &opts, &zero).is_none());
        let alien = ScheduleRecipe {
            unroll: 1000,
            ..good.clone()
        };
        assert!(CompiledKernel::rehydrate(&k, &m, &opts, &alien).is_none());

        // A recipe for one machine must not rehydrate on a machine where it
        // is illegal (fewer ALUs -> resource conflicts), and the options'
        // length budget is enforced.
        let tight = CompileOptions::new().max_length(1);
        assert!(CompiledKernel::rehydrate(&k, &m, &tight, &good).is_none());
    }
}
