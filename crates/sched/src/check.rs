//! Bridge to the independent verifier in `stream-verify`.
//!
//! The scheduler's own [`ModuloSchedule::verify`] shares this crate's DDG
//! latencies and MII code, so it cannot catch a bug common to both. The
//! `stream-verify` crate re-derives everything — slot resource usage, the
//! dependence inequality, ResMII/RecMII, register pressure — from its own
//! latency table; these adapters hand it a schedule in its own vocabulary.

use crate::{Ddg, EdgeKind, ModuloSchedule};
use stream_machine::Machine;
use stream_verify::{DepEdge, DepGraph, DepKind, Report, SchedNode};

/// Converts a scheduler [`Ddg`] into the verifier's dependence-graph form.
pub fn dep_graph(ddg: &Ddg) -> DepGraph {
    DepGraph {
        nodes: ddg
            .nodes()
            .iter()
            .map(|n| SchedNode {
                class: n.class,
                latency: n.latency,
            })
            .collect(),
        edges: ddg
            .edges()
            .iter()
            .map(|e| DepEdge {
                from: e.from,
                to: e.to,
                latency: e.latency,
                distance: e.distance,
                kind: match e.kind {
                    EdgeKind::Data => DepKind::Data,
                    EdgeKind::Order => DepKind::Order,
                },
            })
            .collect(),
    }
}

/// Runs the independent verifier over `schedule` and returns its report.
pub fn check_schedule(ddg: &Ddg, schedule: &ModuloSchedule, machine: &Machine) -> Report {
    stream_verify::verify_schedule(&dep_graph(ddg), schedule.ii, &schedule.times, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{KernelBuilder, Ty};

    #[test]
    fn scheduler_output_passes_the_independent_verifier() {
        let mut b = KernelBuilder::new("axpy");
        let xs = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.const_f(3.0);
        let x = b.read(xs);
        let y = b.mul(a, x);
        b.write(out, y);
        let kernel = b.finish().unwrap();
        let machine = Machine::baseline();
        let ddg = Ddg::build(&kernel, &machine);
        let (sched, _) = crate::modulo_schedule(&ddg, &machine).unwrap();
        let report = check_schedule(&ddg, &sched, &machine);
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn a_corrupted_schedule_is_rejected() {
        let mut b = KernelBuilder::new("chain");
        let xs = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(xs);
        let y = b.sqrt(x);
        b.write(out, y);
        let kernel = b.finish().unwrap();
        let machine = Machine::baseline();
        let ddg = Ddg::build(&kernel, &machine);
        let bogus = ModuloSchedule {
            ii: 1,
            times: vec![0; ddg.nodes().len()],
        };
        let report = check_schedule(&ddg, &bogus, &machine);
        assert!(report.has_errors());
    }
}
