//! Data-dependence graphs for kernel loop bodies.
//!
//! A [`Ddg`] contains one node per *scheduled* operation (ops that occupy a
//! functional unit; constants, parameters, and indices are free) and edges
//! carrying `(latency, iteration-distance)`:
//!
//! * true data dependences (distance 0, producer latency),
//! * loop-carried dependences through recurrences (distance >= 1),
//! * same-stream access ordering (streambuffer pops must stay in program
//!   order, within and across iterations),
//! * scratchpad memory ordering (writes serialize against other accesses).

use std::collections::HashMap;
use stream_ir::{Kernel, Opcode, ValueId};
use stream_machine::{FuKind, Machine, OpClass};

/// One schedulable operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// The kernel value this node schedules.
    pub value: ValueId,
    /// Its scheduling class.
    pub class: OpClass,
    /// Result latency in cycles on the target machine.
    pub latency: u32,
}

/// Whether an edge carries a value (occupying a register for its lifetime)
/// or only orders two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// True data dependence: the destination consumes the source's result.
    Data,
    /// Ordering constraint (stream pop order, scratchpad memory order).
    Order,
}

/// A dependence edge: `to` may start no earlier than
/// `t(from) + latency - ii * distance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Minimum separation in cycles.
    pub latency: u32,
    /// Iteration distance (0 = same iteration).
    pub distance: u32,
    /// Data or ordering edge.
    pub kind: EdgeKind,
}

/// The dependence graph of one kernel on one machine.
#[derive(Debug, Clone)]
pub struct Ddg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edge indices per node.
    succs: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    preds: Vec<Vec<usize>>,
}

impl Ddg {
    /// Builds the dependence graph of `kernel` for `machine`.
    pub fn build(kernel: &Kernel, machine: &Machine) -> Self {
        let mut nodes = Vec::new();
        let mut node_of: HashMap<ValueId, usize> = HashMap::new();
        for (i, _op) in kernel.ops().iter().enumerate() {
            let v = ValueId(i as u32);
            if let Some(class) = kernel.class_of(v) {
                node_of.insert(v, nodes.len());
                nodes.push(Node {
                    value: v,
                    class,
                    latency: machine.latency(class),
                });
            }
        }

        let mut edges: Vec<Edge> = Vec::new();
        let mut push_edge =
            |from: usize, to: usize, latency: u32, distance: u32, kind: EdgeKind| {
                edges.push(Edge {
                    from,
                    to,
                    latency,
                    distance,
                    kind,
                });
            };

        // True data dependences, resolving through free ops (recurrences add
        // iteration distance).
        for (i, op) in kernel.ops().iter().enumerate() {
            let v = ValueId(i as u32);
            let Some(&to) = node_of.get(&v) else { continue };
            for &arg in &op.args {
                if let Some((producer, distance)) = resolve_producer(kernel, arg) {
                    if let Some(&from) = node_of.get(&producer) {
                        push_edge(from, to, nodes[from].latency, distance, EdgeKind::Data);
                    }
                }
            }
        }

        // Same-stream ordering: pops stay in program order within an
        // iteration and wrap to the next iteration.
        let (ins, outs) = kernel.stream_access_order();
        for chain in ins.iter().chain(outs.iter()) {
            let chain_nodes: Vec<usize> = chain.iter().map(|v| node_of[v]).collect();
            for w in chain_nodes.windows(2) {
                push_edge(w[0], w[1], 1, 0, EdgeKind::Order);
            }
            if let (Some(&first), Some(&last)) = (chain_nodes.first(), chain_nodes.last()) {
                push_edge(last, first, 1, 1, EdgeKind::Order);
            }
        }

        // Scratchpad ordering: conservative serialization around writes.
        let sp_ops: Vec<(usize, bool)> = kernel
            .ops()
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op.opcode {
                Opcode::SpRead(_) => Some((node_of[&ValueId(i as u32)], false)),
                Opcode::SpWrite => Some((node_of[&ValueId(i as u32)], true)),
                _ => None,
            })
            .collect();
        for (i, &(a, a_write)) in sp_ops.iter().enumerate() {
            for &(b, b_write) in &sp_ops[i + 1..] {
                if a_write || b_write {
                    push_edge(a, b, 1, 0, EdgeKind::Order);
                }
            }
        }
        // Loop-carried scratchpad ordering: a write in one iteration orders
        // against accesses in the next.
        if let Some(&(last_write, _)) = sp_ops.iter().rev().find(|&&(_, w)| w) {
            if let Some(&(first, _)) = sp_ops.first() {
                push_edge(last_write, first, 1, 1, EdgeKind::Order);
            }
        }

        let mut succs = vec![Vec::new(); nodes.len()];
        let mut preds = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            succs[e.from].push(i);
            preds[e.to].push(i);
        }

        Self {
            nodes,
            edges,
            succs,
            preds,
        }
    }

    /// The schedulable nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All dependence edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Indices of edges leaving `node`.
    pub fn succ_edges(&self, node: usize) -> impl Iterator<Item = &Edge> + '_ {
        self.succs[node].iter().map(|&i| &self.edges[i])
    }

    /// Indices of edges entering `node`.
    pub fn pred_edges(&self, node: usize) -> impl Iterator<Item = &Edge> + '_ {
        self.preds[node].iter().map(|&i| &self.edges[i])
    }

    /// Number of nodes using each functional-unit kind.
    pub fn fu_demand(&self) -> HashMap<FuKind, u32> {
        let mut demand = HashMap::new();
        for n in &self.nodes {
            *demand.entry(n.class.fu_kind()).or_insert(0) += 1;
        }
        demand
    }
}

/// Follows free ops (recurrences accumulate iteration distance) to the
/// scheduled producer of `v`, if any.
fn resolve_producer(kernel: &Kernel, mut v: ValueId) -> Option<(ValueId, u32)> {
    let mut distance = 0u32;
    let mut hops = 0usize;
    loop {
        // A pathological recurrence cycle (r1 -> r2 -> r1) carries no
        // schedulable dependence.
        if hops > kernel.ops().len() {
            return None;
        }
        hops += 1;
        match &kernel.ops()[v.index()].opcode {
            Opcode::Recur(_) => {
                distance += 1;
                v = kernel.recur_next(v)?;
            }
            Opcode::Const(_)
            | Opcode::Param(..)
            | Opcode::IterIndex
            | Opcode::ClusterId
            | Opcode::ClusterCount => return None,
            _ => return Some((v, distance)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{KernelBuilder, Scalar, Ty};
    use stream_vlsi::Shape;

    fn machine() -> Machine {
        Machine::baseline()
    }

    fn simple_kernel() -> Kernel {
        let mut b = KernelBuilder::new("k");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(s);
        let y = b.mul(x, x);
        b.write(out, y);
        b.finish().unwrap()
    }

    #[test]
    fn free_ops_are_not_nodes() {
        let mut b = KernelBuilder::new("k");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let c = b.const_i(3);
        let y = b.add(x, c);
        b.write(out, y);
        let k = b.finish().unwrap();
        let ddg = Ddg::build(&k, &machine());
        // read, add, write — the constant is free.
        assert_eq!(ddg.nodes().len(), 3);
    }

    #[test]
    fn data_edges_carry_producer_latency() {
        let k = simple_kernel();
        let ddg = Ddg::build(&k, &machine());
        // read(3) -> mul, mul(4) -> write.
        let read_to_mul = ddg
            .edges()
            .iter()
            .find(|e| ddg.nodes()[e.from].class == OpClass::SbRead && e.distance == 0)
            .unwrap();
        assert_eq!(read_to_mul.latency, 3);
        let mul_to_write = ddg
            .edges()
            .iter()
            .find(|e| ddg.nodes()[e.from].class == OpClass::FloatMul)
            .unwrap();
        assert_eq!(mul_to_write.latency, 4);
    }

    #[test]
    fn recurrence_creates_loop_carried_edge() {
        let mut b = KernelBuilder::new("acc");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let acc = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        b.write(out, sum);
        let k = b.finish().unwrap();
        let ddg = Ddg::build(&k, &machine());
        // The add depends on itself at distance 1.
        let self_edge = ddg
            .edges()
            .iter()
            .find(|e| e.from == e.to && e.distance == 1)
            .expect("accumulator self-edge");
        assert_eq!(ddg.nodes()[self_edge.from].class, OpClass::FloatAdd);
        assert_eq!(self_edge.latency, 4);
    }

    #[test]
    fn same_stream_accesses_are_chained() {
        let mut b = KernelBuilder::new("wide");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.read(s);
        let c = b.read(s);
        let r = b.add(a, c);
        b.write(out, r);
        let k = b.finish().unwrap();
        let ddg = Ddg::build(&k, &machine());
        // read0 -> read1 (dist 0) and read1 -> read0 (dist 1).
        assert!(ddg.edges().iter().any(|e| e.latency == 1
            && e.distance == 0
            && ddg.nodes()[e.from].class == OpClass::SbRead
            && ddg.nodes()[e.to].class == OpClass::SbRead));
        assert!(ddg.edges().iter().any(|e| e.latency == 1
            && e.distance == 1
            && ddg.nodes()[e.from].class == OpClass::SbRead
            && ddg.nodes()[e.to].class == OpClass::SbRead));
    }

    #[test]
    fn scratchpad_writes_serialize() {
        let mut b = KernelBuilder::new("sp");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let a0 = b.const_i(0);
        b.sp_write(a0, x);
        let y = b.sp_read(a0, Ty::I32);
        b.write(out, y);
        let k = b.finish().unwrap();
        let ddg = Ddg::build(&k, &machine());
        // write -> read ordering edge exists (besides any data edges).
        assert!(ddg.edges().iter().any(|e| {
            ddg.nodes()[e.from].class == OpClass::SpWrite
                && ddg.nodes()[e.to].class == OpClass::SpRead
                && e.distance == 0
        }));
        // and a loop-carried write -> access edge.
        assert!(ddg
            .edges()
            .iter()
            .any(|e| ddg.nodes()[e.from].class == OpClass::SpWrite && e.distance == 1));
    }

    #[test]
    fn fu_demand_counts_classes() {
        let k = simple_kernel();
        let ddg = Ddg::build(&k, &machine());
        let d = ddg.fu_demand();
        assert_eq!(d.get(&FuKind::Alu), Some(&1));
        assert_eq!(d.get(&FuKind::SbPort), Some(&2));
    }

    #[test]
    fn latencies_follow_machine() {
        let k = simple_kernel();
        let big = Machine::paper(Shape::new(8, 14));
        let ddg = Ddg::build(&k, &big);
        let mul = ddg
            .nodes()
            .iter()
            .find(|n| n.class == OpClass::FloatMul)
            .unwrap();
        assert_eq!(mul.latency, 5); // 4 + 1 extra intracluster stage
    }
}
