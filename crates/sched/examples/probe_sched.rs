use stream_kernels::KernelId;
use stream_machine::Machine;
use stream_sched::CompiledKernel;
use stream_vlsi::Shape;

fn main() {
    // Fig 13: intracluster at C=8, speedup over N=5
    println!("=== Fig13 intracluster (C=8), speedup vs N=5; per-cluster elem/cycle ===");
    for id in KernelId::ALL {
        let mut line = format!("{:10}", id.name());
        let base = CompiledKernel::compile_default(
            &id.build(&Machine::paper(Shape::new(8, 5))),
            &Machine::paper(Shape::new(8, 5)),
        )
        .unwrap();
        for n in [2u32, 5, 10, 14] {
            let m = Machine::paper(Shape::new(8, n));
            let c = CompiledKernel::compile_default(&id.build(&m), &m).unwrap();
            line += &format!(
                "  N{n}: {:.2}(II{} x{})",
                c.elements_per_cycle_per_cluster() / base.elements_per_cycle_per_cluster(),
                c.ii(),
                c.unroll_factor()
            );
        }
        println!("{line}");
    }
    println!("=== Fig14 intercluster (N=5), machine-wide speedup vs C=8 ===");
    for id in KernelId::ALL {
        let mut line = format!("{:10}", id.name());
        let base_m = Machine::paper(Shape::new(8, 5));
        let base = CompiledKernel::compile_default(&id.build(&base_m), &base_m).unwrap();
        for c in [8u32, 16, 32, 64, 128] {
            let m = Machine::paper(Shape::new(c, 5));
            let ck = CompiledKernel::compile_default(&id.build(&m), &m).unwrap();
            line += &format!(
                "  C{c}: {:.2}",
                ck.elements_per_cycle() / base.elements_per_cycle()
            );
        }
        println!("{line}");
    }
}
