#![warn(missing_docs)]
//! Design-space sweep engine for the `(C, N)` studies.
//!
//! The paper's evaluation is a large grid sweep — six kernels by twenty
//! machine shapes for Figures 13/14 and Table 5, plus six applications for
//! Figure 15 — and every cell recompiles kernels for its machine. This crate
//! industrializes that hot path with two pieces:
//!
//! * [`Engine`] — a work-stealing parallel job runner built on
//!   [`std::thread::scope`] (no external dependencies). Jobs are submitted
//!   as a batch and results come back **in submission order**, so a sweep
//!   parallelized through the engine renders byte-identically to its serial
//!   equivalent. A process-wide permit pool bounds the total number of live
//!   worker threads even when engine runs nest (e.g. `repro all` running
//!   experiments concurrently while each experiment sweeps its own grid).
//! * [`KernelCache`] — a shared, thread-safe compiled-kernel cache keyed by
//!   `(kernel identity, MachineConfig, CompileOptions)` so each schedule is
//!   compiled exactly once per process no matter how many experiments ask
//!   for it. [`CacheScope`] layers deterministic per-consumer hit/miss
//!   accounting on top (counts depend only on the consumer's own lookups,
//!   not on which thread or experiment populated the cache first).
//!
//! # Examples
//!
//! ```
//! use stream_grid::{global_cache, Engine};
//! use stream_machine::Machine;
//! use stream_sched::CompileOptions;
//! use stream_ir::{KernelBuilder, Ty};
//!
//! let mut b = KernelBuilder::new("axpy");
//! let xs = b.in_stream(Ty::F32);
//! let out = b.out_stream(Ty::F32);
//! let a = b.const_f(3.0);
//! let x = b.read(xs);
//! let y = b.mul(a, x);
//! b.write(out, y);
//! let kernel = b.finish()?;
//!
//! // Compile through the shared cache: the second lookup is a hit.
//! let machine = Machine::baseline();
//! let opts = CompileOptions::new();
//! let first = global_cache().get_or_compile(&kernel, &machine, &opts)?;
//! let again = global_cache().get_or_compile(&kernel, &machine, &opts)?;
//! assert_eq!(first.ii(), again.ii());
//!
//! // Sweep a grid in parallel; results arrive in submission order.
//! let engine = Engine::new(4);
//! let sweep = engine.map(vec![1u32, 2, 3, 4], |n| n * 10);
//! assert_eq!(sweep.results, vec![10, 20, 30, 40]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod engine;

pub use cache::{
    attach_global_disk, global_cache, CacheScope, CacheStats, DiskTier, KernelCache, ScopeCounters,
};
pub use engine::{Engine, Sweep, SweepStats};

/// Samples current grid/pool state into the trace registry's always-on
/// gauges: `cache.entries` (schedules resident in memory),
/// `store.disk_bytes` (bytes held by the global cache's disk tier, 0
/// without one), and `pool.permits_free` / `pool.permits_capacity` (the
/// process-wide permit pool). Touching [`global_cache`] here also
/// registers the `cache.*` counter series, so one call makes the whole
/// cache family visible to exporters even before any compile happens.
/// Intended for scrape/report cadence (it walks the disk tier's
/// directory), not hot paths.
pub fn sample_gauges() {
    let cache = global_cache();
    let stats = cache.stats();
    stream_trace::set_gauge("cache.entries", stats.entries as u64);
    let disk_bytes = cache.disk().map(DiskTier::bytes).unwrap_or(0);
    stream_trace::set_gauge("store.disk_bytes", disk_bytes);
    let pool = stream_pool::global();
    stream_trace::set_gauge("pool.permits_free", pool.available() as u64);
    stream_trace::set_gauge("pool.permits_capacity", pool.capacity() as u64);
}
