//! The work-stealing sweep runner.
//!
//! Jobs are distributed round-robin across per-worker deques; each worker
//! pops its own deque from the front and steals from the back of the others
//! when it runs dry. Results are reduced **in submission order**, so the
//! rendered output of a sweep is identical no matter how many workers ran
//! it — the determinism guarantee `repro --jobs N` relies on.

use crate::cache::{global_cache, CacheScope, KernelCache};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;
use stream_pool::PermitPool;
use stream_trace::{Counter, TraceConfig};

/// A boxed sweep job.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

type TaskQueue<'a, T> = Mutex<VecDeque<(usize, Job<'a, T>)>>;

/// The parallel sweep engine: a target worker count, a permit pool bounding
/// live threads across **nested** runs, and the shared kernel cache.
///
/// `Engine::new(1)` never spawns a thread — every job runs inline on the
/// calling thread in submission order, preserving strictly serial behavior.
/// With more workers, the calling thread always participates, and each
/// `run` call tries to borrow up to `workers - 1` extra threads from the
/// engine-wide permit pool; nested runs (an experiment sweeping its grid
/// while `repro all` sweeps experiments) therefore never exceed the
/// configured parallelism by more than the set of blocked parents.
#[derive(Debug)]
pub struct Engine {
    workers: usize,
    permits: PermitPool,
    cache: &'static KernelCache,
    trace: TraceConfig,
}

/// The outcome of one sweep: ordered results plus timing statistics.
#[derive(Debug)]
pub struct Sweep<T> {
    /// Per-job results, in submission order.
    pub results: Vec<T>,
    /// Timing counters for the run.
    pub stats: SweepStats,
}

/// Timing statistics for one engine run. Wall-clock numbers vary run to
/// run, so they are reported out-of-band (the `repro` binary sends them to
/// stderr) rather than in deterministic report bodies.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Threads that participated (1 = ran inline on the caller).
    pub threads: usize,
    /// Per-job wall-clock, microseconds, in submission order.
    pub job_micros: Vec<u64>,
    /// Wall-clock for the whole run, microseconds.
    pub wall_micros: u64,
}

impl SweepStats {
    /// Total busy time across all jobs, microseconds.
    pub fn busy_micros(&self) -> u64 {
        self.job_micros.iter().sum()
    }

    /// The longest single job, microseconds.
    pub fn max_job_micros(&self) -> u64 {
        self.job_micros.iter().copied().max().unwrap_or(0)
    }

    /// Folds another run's counters into this one (for experiments that
    /// issue several sweeps).
    pub fn absorb(&mut self, other: &SweepStats) {
        self.jobs += other.jobs;
        self.threads = self.threads.max(other.threads);
        self.job_micros.extend_from_slice(&other.job_micros);
        self.wall_micros += other.wall_micros;
    }
}

impl Engine {
    /// Creates an engine targeting `workers` parallel threads (clamped to a
    /// minimum of 1). The engine compiles through the process-wide
    /// [`global_cache`].
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            permits: PermitPool::new(workers - 1),
            cache: global_cache(),
            trace: TraceConfig::default(),
        }
    }

    /// Sets this engine's trace policy. The global `stream_trace` flag is
    /// the master switch; this lets one engine opt its own spans/counters
    /// out even while the process is tracing (benchmarks use it to skip
    /// thousands of per-job spans).
    #[must_use]
    pub fn with_trace_config(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Creates an engine sized to the host's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(default_parallelism())
    }

    /// The configured worker target.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared kernel cache this engine compiles through.
    pub fn cache(&self) -> &'static KernelCache {
        self.cache
    }

    /// Opens a deterministic counting scope on the engine's cache.
    pub fn scope(&self) -> CacheScope<'static> {
        self.cache.scoped()
    }

    /// Runs `jobs` and returns their results in submission order.
    pub fn run<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Sweep<T> {
        let n = jobs.len();
        let wall = Instant::now();
        let mut job_micros = vec![0u64; n];
        if n == 0 {
            return Sweep {
                results: Vec::new(),
                stats: SweepStats {
                    jobs: 0,
                    threads: 1,
                    job_micros,
                    wall_micros: 0,
                },
            };
        }

        // Flag reads happen once per run, never per job; job spans are
        // gated on the bool captured here.
        let job_spans = self.trace.spans_active();
        let mut run_span = if job_spans {
            stream_trace::span("grid", "run")
        } else {
            stream_trace::Span::inert()
        };
        run_span.arg("jobs", n);

        let want = self.workers.min(n) - 1;
        let extra = self.take_permits(want);
        if self.trace.counters_active() {
            stream_trace::count("grid.jobs", n as u64);
            stream_trace::count("grid.permit_shortfall", (want - extra) as u64);
        }
        run_span.arg("threads", extra + 1);

        let results = if extra == 0 {
            let mut out = Vec::with_capacity(n);
            for (i, job) in jobs.into_iter().enumerate() {
                let mut job_span = if job_spans {
                    stream_trace::span("grid", "job")
                } else {
                    stream_trace::Span::inert()
                };
                job_span.arg("index", i);
                let t = Instant::now();
                out.push(job());
                job_micros[i] = t.elapsed().as_micros() as u64;
            }
            out
        } else {
            let steals = Counter::new();
            let parallel = self.run_stealing(jobs, extra + 1, job_spans, &steals);
            self.give_permits(extra);
            if self.trace.counters_active() {
                stream_trace::count("grid.steals", steals.get());
            }
            let mut out = Vec::with_capacity(n);
            for (i, value, micros) in parallel {
                job_micros[i] = micros;
                out.push(value);
            }
            out
        };

        Sweep {
            results,
            stats: SweepStats {
                jobs: n,
                threads: extra + 1,
                job_micros,
                wall_micros: wall.elapsed().as_micros() as u64,
            },
        }
    }

    /// Maps `f` over `items` through the engine; results keep item order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Sweep<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let f = &f;
        self.run(
            items
                .into_iter()
                .map(|item| -> Job<'_, T> { Box::new(move || f(item)) })
                .collect(),
        )
    }

    fn run_stealing<'a, T: Send>(
        &self,
        jobs: Vec<Job<'a, T>>,
        threads: usize,
        job_spans: bool,
        steals: &Counter,
    ) -> Vec<(usize, T, u64)> {
        let queues: Vec<TaskQueue<'a, T>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % threads]
                .lock()
                .expect("sweep queue poisoned")
                .push_back((i, job));
        }
        // Spawned workers inherit the caller's request correlation, so
        // a serve request's id follows its jobs across the fan-out.
        let req = stream_trace::request_id();
        let mut collected = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..threads)
                .map(|me| {
                    let queues = &queues;
                    s.spawn(move || {
                        let _req = stream_trace::request_scope(req);
                        drain(me, queues, job_spans, steals)
                    })
                })
                .collect();
            collected.extend(drain(0, &queues, job_spans, steals));
            for h in handles {
                collected.extend(h.join().expect("sweep worker panicked"));
            }
        });
        collected.sort_unstable_by_key(|&(i, _, _)| i);
        collected
    }

    fn take_permits(&self, want: usize) -> usize {
        self.permits.take(want)
    }

    fn give_permits(&self, n: usize) {
        self.permits.give(n);
    }
}

/// One worker: drain the own deque front-first, then steal from the back of
/// the busiest-looking neighbor (scan order rotated per worker so thieves
/// spread out).
fn drain<'a, T: Send>(
    me: usize,
    queues: &[TaskQueue<'a, T>],
    job_spans: bool,
    steals: &Counter,
) -> Vec<(usize, T, u64)> {
    let mut out = Vec::new();
    // Steals accumulate in a plain local and hit the shared counter once.
    let mut stolen: u64 = 0;
    loop {
        let next = {
            // Own lock is released before any steal attempt: holding it
            // while locking a victim's deque could deadlock two thieves.
            let own = queues[me].lock().expect("sweep queue poisoned").pop_front();
            match own {
                Some(job) => Some(job),
                None => {
                    let theft = steal(me, queues);
                    if theft.is_some() {
                        stolen += 1;
                    }
                    theft
                }
            }
        };
        match next {
            Some((index, job)) => {
                let mut job_span = if job_spans {
                    stream_trace::span("grid", "job")
                } else {
                    stream_trace::Span::inert()
                };
                job_span.arg("index", index);
                let t = Instant::now();
                let value = job();
                out.push((index, value, t.elapsed().as_micros() as u64));
            }
            None => break,
        }
    }
    steals.add(stolen);
    out
}

fn steal<'a, T: Send>(me: usize, queues: &[TaskQueue<'a, T>]) -> Option<(usize, Job<'a, T>)> {
    let n = queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(job) = queues[victim]
            .lock()
            .expect("sweep queue poisoned")
            .pop_back()
        {
            return Some(job);
        }
    }
    None
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn default_parallelism() -> usize {
    stream_pool::default_parallelism()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let engine = Engine::new(4);
        // Reverse sleep profile: late jobs finish first without ordering.
        let sweep = engine.map((0..32u64).collect(), |i| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
            i * i
        });
        let expect: Vec<u64> = (0..32).map(|i| i * i).collect();
        assert_eq!(sweep.results, expect);
        assert_eq!(sweep.stats.jobs, 32);
        assert!(sweep.stats.threads >= 1 && sweep.stats.threads <= 4);
        assert_eq!(sweep.stats.job_micros.len(), 32);
        assert!(sweep.stats.busy_micros() > 0);
    }

    #[test]
    fn single_worker_runs_inline() {
        let engine = Engine::new(1);
        let caller = std::thread::current().id();
        let sweep = engine.map(vec![(); 8], |()| std::thread::current().id());
        assert!(sweep.results.iter().all(|&id| id == caller));
        assert_eq!(sweep.stats.threads, 1);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial = Engine::new(1).map((0..100u32).collect(), |i| i.wrapping_mul(2654435761));
        let parallel = Engine::new(8).map((0..100u32).collect(), |i| i.wrapping_mul(2654435761));
        assert_eq!(serial.results, parallel.results);
    }

    #[test]
    fn nested_runs_are_bounded_by_the_permit_pool() {
        let engine = Engine::new(3);
        let peak = AtomicU64::new(0);
        let live = AtomicU64::new(0);
        let outer = engine.map((0..4usize).collect(), |_| {
            let inner = engine.map((0..6u64).collect(), |j| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
                j
            });
            inner.results.iter().sum::<u64>()
        });
        assert_eq!(outer.results, vec![15, 15, 15, 15]);
        // 2 extra permits + every blocked parent's own thread: with 4 outer
        // jobs over <=3 threads, at most 3 threads run inner jobs at once.
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {peak:?}");
        // All permits returned.
        assert_eq!(engine.permits.available(), 2);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let sweep = Engine::new(4).run(Vec::<Job<'_, u32>>::new());
        assert!(sweep.results.is_empty());
        assert_eq!(sweep.stats.jobs, 0);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut total = SweepStats::default();
        let engine = Engine::new(2);
        total.absorb(&engine.map(vec![1, 2], |x| x).stats);
        total.absorb(&engine.map(vec![3], |x| x).stats);
        assert_eq!(total.jobs, 3);
        assert_eq!(total.job_micros.len(), 3);
    }
}
