//! The shared compiled-kernel cache.
//!
//! Compiling a kernel (dependence graph, iterative modulo scheduling, unroll
//! search) dominates every sweep; the same `(kernel, machine, options)`
//! triple is requested by several experiments per `repro all` run. The cache
//! guarantees each distinct schedule is compiled **exactly once per
//! process**: concurrent requests for the same key block on the first
//! compiler invocation and share its result.
//!
//! An optional **disk tier** ([`DiskTier`], attached with
//! [`KernelCache::attach_disk`]) makes warm lookups survive restarts: on a
//! memory miss the cache first tries to *rehydrate* a persisted
//! [`ScheduleRecipe`](stream_sched::ScheduleRecipe) and only runs the
//! scheduler when the disk misses too. Rehydration is validating
//! (`CompiledKernel::rehydrate` checks schedule legality against a fresh
//! dependence graph), so a corrupted, stale, or truncated entry degrades to
//! a recompute — never to a wrong schedule or a crash.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};
use stream_ir::{to_text, Kernel};
use stream_machine::{Machine, MachineConfig};
use stream_sched::{CompileOptions, CompiledKernel, ScheduleError, ScheduleRecipe};
use stream_store::{DiskStore, Key};
use stream_trace::Counter;

/// Cache key: the kernel's identity (name plus a fingerprint of its exact
/// IR — kernels are rebuilt per machine, so the name alone is not enough),
/// the machine configuration, and the compile options.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    kernel: String,
    kernel_fingerprint: u64,
    machine: MachineConfig,
    opts: CompileOptions,
}

impl CacheKey {
    fn new(kernel: &Kernel, machine: &Machine, opts: &CompileOptions) -> Self {
        Self {
            kernel: kernel.name().to_string(),
            kernel_fingerprint: fnv1a(to_text(kernel).as_bytes()),
            machine: machine.config(),
            opts: opts.clone(),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Version of the on-disk schedule payload. Bump whenever the key blob or
/// payload layout below changes; old entries land in a differently named
/// directory and are simply never read.
const SCHEDULE_FORMAT_VERSION: u32 = 1;

impl CacheKey {
    /// A stable byte serialization of the full key. Doubles as the payload
    /// prefix so a 128-bit hash collision reads back as a blob mismatch
    /// (⇒ miss), never as the wrong schedule.
    fn blob(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.kernel.len());
        let bytes = |out: &mut Vec<u8>, b: &[u8]| {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        };
        bytes(&mut out, self.kernel.as_bytes());
        out.extend_from_slice(&self.kernel_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.machine.shape.clusters.to_le_bytes());
        out.extend_from_slice(&self.machine.shape.alus_per_cluster.to_le_bytes());
        out.extend_from_slice(&self.machine.params_fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.opts.unroll_factors.len() as u32).to_le_bytes());
        for &u in &self.opts.unroll_factors {
            out.extend_from_slice(&u.to_le_bytes());
        }
        out.push(u8::from(self.opts.respect_registers));
        out.extend_from_slice(&self.opts.max_length.to_le_bytes());
        out.push(u8::from(self.opts.software_pipelining));
        out.push(u8::from(self.opts.verify));
        out
    }
}

/// The persistent tier under a [`KernelCache`]: compiled schedules, stored
/// as validated [`ScheduleRecipe`]s in a [`DiskStore`] so they survive
/// process restarts.
#[derive(Debug)]
pub struct DiskTier {
    store: DiskStore,
}

impl DiskTier {
    /// Opens (creating if needed) the schedule tier under `root`. Entries
    /// live in `root/schedules.v<N>/`; `N` is the payload format version,
    /// so incompatible layouts never share a directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> io::Result<Self> {
        Ok(Self {
            store: DiskStore::open(root, "schedules", SCHEDULE_FORMAT_VERSION)?,
        })
    }

    /// Caps the number of resident entries; oldest entries are evicted on
    /// `put` past the cap (counted as `cache.disk_evict`).
    #[must_use]
    pub fn with_max_entries(self, max: usize) -> Self {
        Self {
            store: self.store.with_max_entries(max),
        }
    }

    /// Total on-disk bytes held by this tier (see
    /// [`stream_store::DiskStore::bytes`]).
    pub fn bytes(&self) -> u64 {
        self.store.bytes()
    }

    /// The directory entries are stored in.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Looks up `key` and rehydrates the stored recipe, validating it
    /// against a freshly built dependence graph for `(kernel, machine)`.
    /// Any failure — absent file, bad frame, blob mismatch, undecodable or
    /// illegal recipe — is a `None` (⇒ the caller compiles).
    fn load(
        &self,
        key: &CacheKey,
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
    ) -> Option<CompiledKernel> {
        let blob = key.blob();
        let payload = self.store.get(Key::of(&blob))?;
        let blob_len = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
        let rest = payload.get(4..)?;
        if rest.len() < blob_len || rest[..blob_len] != blob[..] {
            return None;
        }
        let recipe = ScheduleRecipe::decode(&rest[blob_len..])?;
        CompiledKernel::rehydrate(kernel, machine, opts, &recipe)
    }

    /// Persists the recipe for `compiled` under `key` (write-through after
    /// a compile). Best-effort: an I/O error only costs future warm starts.
    fn save(&self, key: &CacheKey, compiled: &CompiledKernel) {
        let blob = key.blob();
        let recipe = compiled.recipe().encode();
        let mut payload = Vec::with_capacity(4 + blob.len() + recipe.len());
        payload.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        payload.extend_from_slice(&blob);
        payload.extend_from_slice(&recipe);
        if let Ok(evicted) = self.store.put(Key::of(&blob), &payload) {
            if evicted > 0 {
                stream_trace::count("cache.disk_evict", evicted as u64);
            }
        }
    }
}

type CacheSlot = Arc<OnceLock<Result<Arc<CompiledKernel>, ScheduleError>>>;

/// A thread-safe compiled-kernel cache.
///
/// Lookups return [`Arc<CompiledKernel>`] so cached schedules are shared,
/// not cloned. Failed compilations are cached too (the error is
/// deterministic for a given key). Global hit/miss counters are exact:
/// *misses* is the number of distinct keys compiled, *hits* is every other
/// lookup — both independent of thread scheduling.
#[derive(Debug, Default)]
pub struct KernelCache {
    map: Mutex<HashMap<CacheKey, CacheSlot>>,
    disk: OnceLock<DiskTier>,
    // Standalone trace counters: always exact (they are this cache's
    // statistics, not optional telemetry). The process-wide cache from
    // [`global_cache`] registers these very cells in the trace registry's
    // always-on tier, so exporters read them with no mirror writes;
    // per-instance caches (tests, embedders) stay unregistered.
    hits: Counter,
    misses: Counter,
    compiles: Counter,
    disk_hits: Counter,
    disk_misses: Counter,
}

/// A snapshot of cache-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-compiled entry.
    pub hits: u64,
    /// Lookups that missed the memory tier (= distinct keys seen).
    pub misses: u64,
    /// Memory misses that actually ran the scheduler (a miss served by the
    /// disk tier is not a compile; without a disk tier, `compiles ==
    /// misses`).
    pub compiles: u64,
    /// Memory misses rehydrated from the disk tier.
    pub disk_hits: u64,
    /// Memory misses the disk tier could not serve (absent, corrupt, or
    /// failed-to-rehydrate entries — all fall through to the compiler).
    pub disk_misses: u64,
    /// Entries currently resident in memory.
    pub entries: usize,
}

impl KernelCache {
    /// Creates an empty cache. Most callers want [`global_cache`] instead so
    /// that every consumer in the process shares one cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `kernel` for `machine` with `opts`, or returns the cached
    /// result of an identical earlier request.
    ///
    /// # Errors
    ///
    /// Returns (and caches) the [`ScheduleError`] if no legal schedule
    /// exists for the key.
    pub fn get_or_compile(
        &self,
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledKernel>, ScheduleError> {
        self.get_or_compile_keyed(CacheKey::new(kernel, machine, opts), kernel, machine, opts)
    }

    fn get_or_compile_keyed(
        &self,
        key: CacheKey,
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledKernel>, ScheduleError> {
        let slot: CacheSlot = {
            let mut map = self.map.lock().expect("kernel cache poisoned");
            Arc::clone(map.entry(key.clone()).or_default())
        };
        let mut missed_here = false;
        let result = slot.get_or_init(|| {
            missed_here = true;
            let mut cache_span = stream_trace::span("cache", "fill");
            cache_span.arg("kernel", kernel.name());
            if let Some(tier) = self.disk.get() {
                if let Some(warm) = tier.load(&key, kernel, machine, opts) {
                    self.disk_hits.incr();
                    cache_span.arg("tier", "disk");
                    return Ok(Arc::new(warm));
                }
                self.disk_misses.incr();
            }
            self.compiles.incr();
            cache_span.arg("tier", "compile");
            let compiled = {
                let mut compile_span = stream_trace::span("grid", "compile");
                compile_span.arg("kernel", kernel.name());
                CompiledKernel::compile(kernel, machine, opts)
            };
            if let (Some(tier), Ok(c)) = (self.disk.get(), &compiled) {
                tier.save(&key, c);
            }
            compiled.map(Arc::new)
        });
        if missed_here {
            self.misses.incr();
        } else {
            self.hits.incr();
        }
        result.clone()
    }

    /// Attaches a persistent tier: memory misses first try to rehydrate a
    /// stored recipe and only fall back to the scheduler when the disk
    /// misses too; fresh compiles are written through. At most one tier can
    /// be attached per cache — returns `false` (dropping `tier`) if one
    /// already is.
    pub fn attach_disk(&self, tier: DiskTier) -> bool {
        self.disk.set(tier).is_ok()
    }

    /// The attached disk tier, if any.
    pub fn disk(&self) -> Option<&DiskTier> {
        self.disk.get()
    }

    /// Current cache-wide counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            compiles: self.compiles.get(),
            disk_hits: self.disk_hits.get(),
            disk_misses: self.disk_misses.get(),
            entries: self.map.lock().expect("kernel cache poisoned").len(),
        }
    }

    /// Opens a scope with its own deterministic counters (see
    /// [`CacheScope`]).
    pub fn scoped(&self) -> CacheScope<'_> {
        CacheScope {
            cache: self,
            seen: Mutex::new(HashSet::new()),
            lookups: Counter::new(),
        }
    }
}

/// The process-wide kernel cache: every consumer (the repro harness, the
/// application builders, benchmarks) compiles through this cache so a
/// schedule requested by several of them is compiled once.
///
/// The global cache's own counter cells are registered (once) in the
/// trace registry's always-on tier under `grid.cache.*` / `cache.*`, so
/// `/metrics` and the trace exporters report exact values with no mirror
/// writes on the lookup path and no dependence on the tracing flag.
pub fn global_cache() -> &'static KernelCache {
    static GLOBAL: OnceLock<KernelCache> = OnceLock::new();
    let cache = GLOBAL.get_or_init(KernelCache::new);
    static REGISTER: std::sync::Once = std::sync::Once::new();
    REGISTER.call_once(|| {
        stream_trace::register_counter("grid.cache.hit", &cache.hits);
        stream_trace::register_counter("grid.cache.miss", &cache.misses);
        stream_trace::register_counter("cache.compiles", &cache.compiles);
        stream_trace::register_counter("cache.disk_hit", &cache.disk_hits);
        stream_trace::register_counter("cache.disk_miss", &cache.disk_misses);
    });
    cache
}

/// Attaches a persistent tier rooted at `root` to the process-wide cache
/// (see [`KernelCache::attach_disk`]). Returns `false` if a tier was
/// already attached; `root` is created if absent.
///
/// # Errors
///
/// Propagates directory-creation failures.
pub fn attach_global_disk(root: &Path) -> io::Result<bool> {
    Ok(global_cache().attach_disk(DiskTier::open(root)?))
}

/// A consumer-local view of a [`KernelCache`] whose hit/miss counters are
/// **deterministic**: a lookup counts as a hit iff this scope has already
/// looked up the same key, regardless of which thread or which other scope
/// populated the shared cache first. This is what lets per-experiment cache
/// counters appear in rendered reports while `--jobs 1` and `--jobs N`
/// output stay byte-identical.
#[derive(Debug)]
pub struct CacheScope<'c> {
    cache: &'c KernelCache,
    seen: Mutex<HashSet<CacheKey>>,
    lookups: Counter,
}

/// Counters for one [`CacheScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeCounters {
    /// Total lookups made through the scope.
    pub lookups: u64,
    /// Distinct schedules the scope needed (its logical compile count).
    pub compiles: u64,
    /// `lookups - compiles`: requests served without a (logical) compile.
    pub hits: u64,
}

impl CacheScope<'_> {
    /// Compiles through the underlying shared cache, recording the lookup
    /// in this scope's deterministic counters.
    ///
    /// # Errors
    ///
    /// As [`KernelCache::get_or_compile`].
    pub fn compile(
        &self,
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledKernel>, ScheduleError> {
        let key = CacheKey::new(kernel, machine, opts);
        self.lookups.incr();
        self.seen
            .lock()
            .expect("cache scope poisoned")
            .insert(key.clone());
        self.cache.get_or_compile_keyed(key, kernel, machine, opts)
    }

    /// Compiles with default options.
    ///
    /// # Errors
    ///
    /// As [`KernelCache::get_or_compile`].
    pub fn compile_default(
        &self,
        kernel: &Kernel,
        machine: &Machine,
    ) -> Result<Arc<CompiledKernel>, ScheduleError> {
        self.compile(kernel, machine, &CompileOptions::default())
    }

    /// This scope's deterministic counters.
    pub fn counters(&self) -> ScopeCounters {
        let lookups = self.lookups.get();
        let compiles = self.seen.lock().expect("cache scope poisoned").len() as u64;
        ScopeCounters {
            lookups,
            compiles,
            hits: lookups - compiles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{KernelBuilder, Ty};
    use stream_kernels::KernelId;
    use stream_vlsi::Shape;

    fn toy_kernel(name: &str, muls: usize) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(s);
        let mut acc = b.mul(x, x);
        for _ in 0..muls {
            acc = b.add(acc, x);
        }
        b.write(out, acc);
        b.finish().unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_schedule() {
        let cache = KernelCache::new();
        let machine = Machine::baseline();
        let k = toy_kernel("t", 4);
        let opts = CompileOptions::new();
        let a = cache.get_or_compile(&k, &machine, &opts).unwrap();
        let b = cache.get_or_compile(&k, &machine, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_options_machine_and_ir_get_distinct_entries() {
        let cache = KernelCache::new();
        let m1 = Machine::baseline();
        let m2 = Machine::paper(Shape::new(16, 5));
        let k = toy_kernel("t", 4);
        let opts = CompileOptions::new();
        cache.get_or_compile(&k, &m1, &opts).unwrap();
        cache.get_or_compile(&k, &m2, &opts).unwrap();
        cache
            .get_or_compile(&k, &m1, &opts.clone().without_software_pipelining())
            .unwrap();
        // Same name, different IR: still a distinct entry.
        cache
            .get_or_compile(&toy_kernel("t", 5), &m1, &opts)
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 4, 4));
    }

    #[test]
    fn cached_schedule_matches_a_fresh_compile() {
        let machine = Machine::paper(Shape::new(8, 10));
        let opts = CompileOptions::default();
        for id in KernelId::ALL {
            let kernel = id.build(&machine);
            let fresh = CompiledKernel::compile(&kernel, &machine, &opts).unwrap();
            let cache = KernelCache::new();
            cache.get_or_compile(&kernel, &machine, &opts).unwrap();
            let cached = cache.get_or_compile(&kernel, &machine, &opts).unwrap();
            assert_eq!(fresh.listing(), cached.listing(), "{id}");
            assert_eq!(fresh.ii(), cached.ii(), "{id}");
            assert_eq!(fresh.unroll_factor(), cached.unroll_factor(), "{id}");
        }
    }

    #[test]
    fn scope_counters_are_independent_of_shared_state() {
        let cache = KernelCache::new();
        let machine = Machine::baseline();
        let k = toy_kernel("t", 4);
        let opts = CompileOptions::new();
        // Warm the shared cache through a first scope.
        let warm = cache.scoped();
        warm.compile(&k, &machine, &opts).unwrap();
        // A second scope still counts its first lookup as a compile.
        let scope = cache.scoped();
        scope.compile(&k, &machine, &opts).unwrap();
        scope.compile(&k, &machine, &opts).unwrap();
        let c = scope.counters();
        assert_eq!((c.lookups, c.compiles, c.hits), (2, 1, 1));
        // The shared cache compiled only once overall.
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_lookups_compile_exactly_once() {
        let cache = KernelCache::new();
        let machine = Machine::baseline();
        let k = toy_kernel("t", 8);
        let opts = CompileOptions::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.get_or_compile(&k, &machine, &opts).unwrap());
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    /// A unique scratch directory (fresh per call, removed afterwards via
    /// the returned guard's drop).
    fn scratch(tag: &str) -> (std::path::PathBuf, impl Drop) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "stream-grid-cache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
        (dir.clone(), Cleanup(dir))
    }

    fn disk_cache(root: &Path) -> KernelCache {
        let cache = KernelCache::new();
        assert!(cache.attach_disk(DiskTier::open(root).unwrap()));
        cache
    }

    #[test]
    fn warm_restart_skips_the_scheduler() {
        let (root, _guard) = scratch("warm");
        let machine = Machine::paper(Shape::new(8, 5));
        let k = toy_kernel("warm", 6);
        let opts = CompileOptions::new();

        // "Process one": cold — compiles and writes through.
        let cold = disk_cache(&root);
        let fresh = cold.get_or_compile(&k, &machine, &opts).unwrap();
        let s = cold.stats();
        assert_eq!((s.compiles, s.disk_hits, s.disk_misses), (1, 0, 1));

        // "Process two": a brand-new cache over the same directory
        // rehydrates — zero scheduler runs, identical schedule.
        let warm = disk_cache(&root);
        let rehydrated = warm.get_or_compile(&k, &machine, &opts).unwrap();
        let s = warm.stats();
        assert_eq!((s.compiles, s.disk_hits, s.disk_misses), (0, 1, 0));
        assert_eq!(rehydrated.listing(), fresh.listing());
        assert_eq!(rehydrated.ii(), fresh.ii());
        assert_eq!(rehydrated.unroll_factor(), fresh.unroll_factor());
    }

    #[test]
    fn disk_keys_distinguish_machine_and_options() {
        let (root, _guard) = scratch("keys");
        let k = toy_kernel("keys", 4);
        let opts = CompileOptions::new();
        let cold = disk_cache(&root);
        cold.get_or_compile(&k, &Machine::baseline(), &opts)
            .unwrap();

        // Different machine and different options must not rehydrate from
        // the baseline entry.
        let warm = disk_cache(&root);
        warm.get_or_compile(&k, &Machine::paper(Shape::new(16, 5)), &opts)
            .unwrap();
        warm.get_or_compile(
            &k,
            &Machine::baseline(),
            &opts.clone().without_software_pipelining(),
        )
        .unwrap();
        assert_eq!(warm.stats().disk_hits, 0);
        assert_eq!(warm.stats().compiles, 2);
    }

    #[test]
    fn corrupted_disk_entries_recompute_silently() {
        let (root, _guard) = scratch("corrupt");
        let machine = Machine::baseline();
        let k = toy_kernel("corrupt", 5);
        let opts = CompileOptions::new();
        let fresh = disk_cache(&root)
            .get_or_compile(&k, &machine, &opts)
            .unwrap();

        let tier_dir = DiskTier::open(&root).unwrap().dir().to_path_buf();
        let entry = std::fs::read_dir(&tier_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "entry"))
            .expect("write-through created an entry");

        // Flip a payload byte: the frame checksum catches it, the lookup
        // degrades to a recompute, and the healed entry serves the next
        // restart warm.
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&entry, &bytes).unwrap();

        let recovered = disk_cache(&root);
        let recompiled = recovered.get_or_compile(&k, &machine, &opts).unwrap();
        let s = recovered.stats();
        assert_eq!((s.compiles, s.disk_hits, s.disk_misses), (1, 0, 1));
        assert_eq!(recompiled.listing(), fresh.listing());

        let healed = disk_cache(&root);
        healed.get_or_compile(&k, &machine, &opts).unwrap();
        assert_eq!(healed.stats().disk_hits, 1);

        // Truncation is likewise a silent miss.
        let entry = std::fs::read_dir(&tier_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "entry"))
            .unwrap();
        let bytes = std::fs::read(&entry).unwrap();
        std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
        let truncated = disk_cache(&root);
        truncated.get_or_compile(&k, &machine, &opts).unwrap();
        assert_eq!(truncated.stats().compiles, 1);
    }

    #[test]
    fn valid_frame_with_illegal_recipe_recomputes() {
        let (root, _guard) = scratch("illegal");
        let machine = Machine::baseline();
        let k = toy_kernel("illegal", 5);
        let opts = CompileOptions::new();
        let cold = disk_cache(&root);
        cold.get_or_compile(&k, &machine, &opts).unwrap();

        // Forge a well-framed entry whose recipe schedules every op at
        // cycle 0 — structurally decodable, semantically illegal. The
        // validating rehydration must reject it and recompile.
        let key = CacheKey::new(&k, &machine, &opts);
        let blob = key.blob();
        let bogus = ScheduleRecipe {
            unroll: 1,
            ii: 1,
            times: vec![0; 64],
        };
        let mut payload = Vec::new();
        payload.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        payload.extend_from_slice(&blob);
        payload.extend_from_slice(&bogus.encode());
        let store = DiskStore::open(&root, "schedules", SCHEDULE_FORMAT_VERSION).unwrap();
        store.put(Key::of(&blob), &payload).unwrap();

        let poisoned = disk_cache(&root);
        poisoned.get_or_compile(&k, &machine, &opts).unwrap();
        let s = poisoned.stats();
        assert_eq!((s.compiles, s.disk_hits, s.disk_misses), (1, 0, 1));
    }
}
