//! The shared compiled-kernel cache.
//!
//! Compiling a kernel (dependence graph, iterative modulo scheduling, unroll
//! search) dominates every sweep; the same `(kernel, machine, options)`
//! triple is requested by several experiments per `repro all` run. The cache
//! guarantees each distinct schedule is compiled **exactly once per
//! process**: concurrent requests for the same key block on the first
//! compiler invocation and share its result.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};
use stream_ir::{to_text, Kernel};
use stream_machine::{Machine, MachineConfig};
use stream_sched::{CompileOptions, CompiledKernel, ScheduleError};
use stream_trace::Counter;

/// Cache key: the kernel's identity (name plus a fingerprint of its exact
/// IR — kernels are rebuilt per machine, so the name alone is not enough),
/// the machine configuration, and the compile options.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    kernel: String,
    kernel_fingerprint: u64,
    machine: MachineConfig,
    opts: CompileOptions,
}

impl CacheKey {
    fn new(kernel: &Kernel, machine: &Machine, opts: &CompileOptions) -> Self {
        Self {
            kernel: kernel.name().to_string(),
            kernel_fingerprint: fnv1a(to_text(kernel).as_bytes()),
            machine: machine.config(),
            opts: opts.clone(),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

type CacheSlot = Arc<OnceLock<Result<Arc<CompiledKernel>, ScheduleError>>>;

/// A thread-safe compiled-kernel cache.
///
/// Lookups return [`Arc<CompiledKernel>`] so cached schedules are shared,
/// not cloned. Failed compilations are cached too (the error is
/// deterministic for a given key). Global hit/miss counters are exact:
/// *misses* is the number of distinct keys compiled, *hits* is every other
/// lookup — both independent of thread scheduling.
#[derive(Debug, Default)]
pub struct KernelCache {
    map: Mutex<HashMap<CacheKey, CacheSlot>>,
    // Standalone trace counters: always exact (they are this cache's
    // statistics, not optional telemetry); the gated `grid.cache.*`
    // registry counters below mirror them only while tracing is on.
    hits: Counter,
    misses: Counter,
}

/// A snapshot of cache-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-compiled entry.
    pub hits: u64,
    /// Lookups that ran the compiler (= distinct keys seen).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl KernelCache {
    /// Creates an empty cache. Most callers want [`global_cache`] instead so
    /// that every consumer in the process shares one cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `kernel` for `machine` with `opts`, or returns the cached
    /// result of an identical earlier request.
    ///
    /// # Errors
    ///
    /// Returns (and caches) the [`ScheduleError`] if no legal schedule
    /// exists for the key.
    pub fn get_or_compile(
        &self,
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledKernel>, ScheduleError> {
        self.get_or_compile_keyed(CacheKey::new(kernel, machine, opts), kernel, machine, opts)
    }

    fn get_or_compile_keyed(
        &self,
        key: CacheKey,
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledKernel>, ScheduleError> {
        let slot: CacheSlot = {
            let mut map = self.map.lock().expect("kernel cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut compiled_here = false;
        let result = slot.get_or_init(|| {
            compiled_here = true;
            let mut compile_span = stream_trace::span("grid", "compile");
            compile_span.arg("kernel", kernel.name());
            CompiledKernel::compile(kernel, machine, opts).map(Arc::new)
        });
        if compiled_here {
            self.misses.incr();
            stream_trace::count("grid.cache.miss", 1);
        } else {
            self.hits.incr();
            stream_trace::count("grid.cache.hit", 1);
        }
        result.clone()
    }

    /// Current cache-wide counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.map.lock().expect("kernel cache poisoned").len(),
        }
    }

    /// Opens a scope with its own deterministic counters (see
    /// [`CacheScope`]).
    pub fn scoped(&self) -> CacheScope<'_> {
        CacheScope {
            cache: self,
            seen: Mutex::new(HashSet::new()),
            lookups: Counter::new(),
        }
    }
}

/// The process-wide kernel cache: every consumer (the repro harness, the
/// application builders, benchmarks) compiles through this cache so a
/// schedule requested by several of them is compiled once.
pub fn global_cache() -> &'static KernelCache {
    static GLOBAL: OnceLock<KernelCache> = OnceLock::new();
    GLOBAL.get_or_init(KernelCache::new)
}

/// A consumer-local view of a [`KernelCache`] whose hit/miss counters are
/// **deterministic**: a lookup counts as a hit iff this scope has already
/// looked up the same key, regardless of which thread or which other scope
/// populated the shared cache first. This is what lets per-experiment cache
/// counters appear in rendered reports while `--jobs 1` and `--jobs N`
/// output stay byte-identical.
#[derive(Debug)]
pub struct CacheScope<'c> {
    cache: &'c KernelCache,
    seen: Mutex<HashSet<CacheKey>>,
    lookups: Counter,
}

/// Counters for one [`CacheScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeCounters {
    /// Total lookups made through the scope.
    pub lookups: u64,
    /// Distinct schedules the scope needed (its logical compile count).
    pub compiles: u64,
    /// `lookups - compiles`: requests served without a (logical) compile.
    pub hits: u64,
}

impl CacheScope<'_> {
    /// Compiles through the underlying shared cache, recording the lookup
    /// in this scope's deterministic counters.
    ///
    /// # Errors
    ///
    /// As [`KernelCache::get_or_compile`].
    pub fn compile(
        &self,
        kernel: &Kernel,
        machine: &Machine,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledKernel>, ScheduleError> {
        let key = CacheKey::new(kernel, machine, opts);
        self.lookups.incr();
        self.seen
            .lock()
            .expect("cache scope poisoned")
            .insert(key.clone());
        self.cache.get_or_compile_keyed(key, kernel, machine, opts)
    }

    /// Compiles with default options.
    ///
    /// # Errors
    ///
    /// As [`KernelCache::get_or_compile`].
    pub fn compile_default(
        &self,
        kernel: &Kernel,
        machine: &Machine,
    ) -> Result<Arc<CompiledKernel>, ScheduleError> {
        self.compile(kernel, machine, &CompileOptions::default())
    }

    /// This scope's deterministic counters.
    pub fn counters(&self) -> ScopeCounters {
        let lookups = self.lookups.get();
        let compiles = self.seen.lock().expect("cache scope poisoned").len() as u64;
        ScopeCounters {
            lookups,
            compiles,
            hits: lookups - compiles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{KernelBuilder, Ty};
    use stream_kernels::KernelId;
    use stream_vlsi::Shape;

    fn toy_kernel(name: &str, muls: usize) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(s);
        let mut acc = b.mul(x, x);
        for _ in 0..muls {
            acc = b.add(acc, x);
        }
        b.write(out, acc);
        b.finish().unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_schedule() {
        let cache = KernelCache::new();
        let machine = Machine::baseline();
        let k = toy_kernel("t", 4);
        let opts = CompileOptions::new();
        let a = cache.get_or_compile(&k, &machine, &opts).unwrap();
        let b = cache.get_or_compile(&k, &machine, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_options_machine_and_ir_get_distinct_entries() {
        let cache = KernelCache::new();
        let m1 = Machine::baseline();
        let m2 = Machine::paper(Shape::new(16, 5));
        let k = toy_kernel("t", 4);
        let opts = CompileOptions::new();
        cache.get_or_compile(&k, &m1, &opts).unwrap();
        cache.get_or_compile(&k, &m2, &opts).unwrap();
        cache
            .get_or_compile(&k, &m1, &opts.clone().without_software_pipelining())
            .unwrap();
        // Same name, different IR: still a distinct entry.
        cache
            .get_or_compile(&toy_kernel("t", 5), &m1, &opts)
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 4, 4));
    }

    #[test]
    fn cached_schedule_matches_a_fresh_compile() {
        let machine = Machine::paper(Shape::new(8, 10));
        let opts = CompileOptions::default();
        for id in KernelId::ALL {
            let kernel = id.build(&machine);
            let fresh = CompiledKernel::compile(&kernel, &machine, &opts).unwrap();
            let cache = KernelCache::new();
            cache.get_or_compile(&kernel, &machine, &opts).unwrap();
            let cached = cache.get_or_compile(&kernel, &machine, &opts).unwrap();
            assert_eq!(fresh.listing(), cached.listing(), "{id}");
            assert_eq!(fresh.ii(), cached.ii(), "{id}");
            assert_eq!(fresh.unroll_factor(), cached.unroll_factor(), "{id}");
        }
    }

    #[test]
    fn scope_counters_are_independent_of_shared_state() {
        let cache = KernelCache::new();
        let machine = Machine::baseline();
        let k = toy_kernel("t", 4);
        let opts = CompileOptions::new();
        // Warm the shared cache through a first scope.
        let warm = cache.scoped();
        warm.compile(&k, &machine, &opts).unwrap();
        // A second scope still counts its first lookup as a compile.
        let scope = cache.scoped();
        scope.compile(&k, &machine, &opts).unwrap();
        scope.compile(&k, &machine, &opts).unwrap();
        let c = scope.counters();
        assert_eq!((c.lookups, c.compiles, c.hits), (2, 1, 1));
        // The shared cache compiled only once overall.
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_lookups_compile_exactly_once() {
        let cache = KernelCache::new();
        let machine = Machine::baseline();
        let k = toy_kernel("t", 8);
        let opts = CompileOptions::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.get_or_compile(&k, &machine, &opts).unwrap());
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
