#![warn(missing_docs)]
//! A minimal, dependency-free stand-in for the [`proptest`] crate so the
//! workspace's property tests run in network-isolated environments where the
//! real crate cannot be downloaded.
//!
//! Only the API surface this workspace actually uses is provided:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` headers,
//! * [`prop_assert!`], [`prop_assert_eq!`], and [`prop_oneof!`],
//! * range strategies (`1u32..5000`, `2u32..=4`, `0.25f32..4.0`, ...),
//!   [`strategy::Just`], tuples, [`strategy::Strategy::prop_map`],
//!   [`collection::vec`], and [`arbitrary::any`],
//! * [`test_runner::Config::with_cases`].
//!
//! Values are generated from a SplitMix64 PRNG seeded by the test name and
//! case index, so every run of a test explores the same deterministic case
//! sequence. There is **no shrinking**: a failing case reports its case
//! number and message and panics.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(<expr>)]` header followed by `#[test]` functions
/// whose parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::seed_from_name(stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(seed, u64::from(case));
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the whole process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Picks uniformly among several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strategy),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1usize..=4, z in 0.25f32..4.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..4.0).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
        }

        #[test]
        fn oneof_only_yields_listed_values(
            n in prop_oneof![Just(2u32), Just(5), Just(10)],
            flag in any::<bool>(),
        ) {
            prop_assert!(n == 2 || n == 5 || n == 10);
            prop_assert!(flag == (flag as u8 != 0));
        }

        #[test]
        fn prop_map_transforms(pair in (1u32..=8, 1u32..=8).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=64).contains(&pair), "pair = {}", pair);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let seed = crate::test_runner::seed_from_name("generation_is_deterministic");
        let a: Vec<u8> = (0..16)
            .map(|i| crate::test_runner::TestRng::new(seed, i).next_u64() as u8)
            .collect();
        let b: Vec<u8> = (0..16)
            .map(|i| crate::test_runner::TestRng::new(seed, i).next_u64() as u8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_case_reports_its_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(false, "x = {}", x);
            }
        }
        always_fails();
    }
}
