//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_both_halves() {
        let mut rng = TestRng::new(5, 6);
        let (mut low, mut high) = (false, false);
        for _ in 0..100 {
            let v = any::<u8>().generate(&mut rng);
            if v < 128 {
                low = true;
            } else {
                high = true;
            }
        }
        assert!(low && high);
    }

    #[test]
    fn any_bool_yields_both() {
        let mut rng = TestRng::new(7, 8);
        let mut seen = [false; 2];
        for _ in 0..50 {
            seen[usize::from(any::<bool>().generate(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
