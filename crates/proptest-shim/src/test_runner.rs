//! Test configuration, the deterministic PRNG, and case failure reporting.

use std::fmt;

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases to run.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property-test case: carries the assertion message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a hash of the test name, used as the per-test seed so different
/// tests explore different sequences while every run of one test repeats
/// the same cases.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64: a small, high-quality deterministic generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64, case: u64) -> Self {
        Self {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_from_name("a"), seed_from_name("b"));
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::new(1, 2);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_is_half_open() {
        let mut rng = TestRng::new(3, 4);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
