//! Value-generation strategies: ranges, constants, tuples, maps, unions.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of an output type from the deterministic PRNG.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; this
/// stand-in generates plain values (no shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Every reference to a strategy is itself a strategy (the `proptest!`
/// macro generates from `&strategy`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of one type (the [`crate::prop_oneof!`]
/// macro).
#[derive(Debug, Clone)]
pub struct OneOf<S> {
    options: Vec<S>,
}

impl<S: Strategy> OneOf<S> {
    /// A union of `options`; must be nonempty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42, 7)
    }

    #[test]
    fn int_ranges_cover_bounds_eventually() {
        let mut r = rng();
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[(0u32..5).generate(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_hits_endpoint() {
        let mut r = rng();
        let mut hit = false;
        for _ in 0..200 {
            hit |= (0u32..=3).generate(&mut r) == 3;
        }
        assert!(hit);
    }

    #[test]
    fn just_clones_its_value() {
        assert_eq!(Just(9u32).generate(&mut rng()), 9);
    }

    #[test]
    fn map_applies() {
        let s = (1u32..2).prop_map(|v| v * 10);
        assert_eq!(s.generate(&mut rng()), 10);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let (a, b) = (1u32..2, 5i32..6).generate(&mut rng());
        assert_eq!((a, b), (1, 5));
    }

    #[test]
    fn negative_int_ranges_work() {
        let mut r = rng();
        for _ in 0..100 {
            let v = (-5i32..5).generate(&mut r);
            assert!((-5..5).contains(&v));
        }
    }
}
