//! Collection strategies: `vec(element, len_range)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of `element`-generated values with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_span_the_range() {
        let mut rng = TestRng::new(11, 12);
        let s = vec(any::<u8>(), 1..5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[s.generate(&mut rng).len()] = true;
        }
        assert!(!seen[0] && seen[1] && seen[2] && seen[3] && seen[4]);
    }
}
