//! `stream-tune`: cost-guided per-application auto-tuning of unroll
//! factor × strip batching × tape tier × native policy.
//!
//! The paper fixes one scheduling recipe for every application; this crate
//! searches a small configuration space per `(app, machine)` instead and
//! returns the fastest point:
//!
//! * **Unroll factors** — which set the VLIW scheduler's own II search may
//!   choose from (the default 1/2/4/8, capped subsets, and a deeper
//!   1..16 set).
//! * **Strip batching** — how many natural strips each stream-level kernel
//!   call covers ([`stream_apps::AppId::program_with`]), trading SRF
//!   residency for fill/drain amortization.
//! * **Tape tier** ([`TapeTier`]) and the tier-3 native-backend policy —
//!   functional-execution knobs that cannot change results (every tier is
//!   differential-tested bit-exact), chosen by a static cost model over
//!   the compiled tapes.
//!
//! The objective is deterministic: analytic simulated cycles of the
//! candidate's stream program ([`stream_sim::simulate`]), ties broken
//! toward the earlier candidate — the default point is evaluated first, so
//! the tuner never regresses below the default configuration.
//!
//! # Pruning: fewer scheduler runs than the cross-product
//!
//! Compiling a candidate is the expensive part (one modulo-scheduler
//! search per kernel per distinct option set). Before compiling anything,
//! each candidate is bounded from below using only ResMII/RecMII bounds
//! from the scheduler's [`SearchMemo`] (no scheduling): a kernel unrolled
//! by `u` retires at most `u / MII(u)` records per cycle per cluster, so
//!
//! ```text
//! lb(candidate) = Σ_kernels  records(kernel) · min_{u ∈ set} MII(u)/u / C
//! ```
//!
//! is a valid lower bound on the program's kernel-busy cycles — and the
//! simulator's total is never below kernel-busy. Strip batching never
//! reduces total records, so the bound is strip-invariant. Any candidate
//! whose bound already meets the incumbent's cycles is discarded unseen.
//!
//! A second rule — *identity pruning* — removes candidates whose outcome
//! is already known: the scheduler's factor selection is a deterministic
//! argmax over the offered set, so if an evaluated superset's chosen
//! factors all lie inside a candidate subset, the subset would compile to
//! the identical program (same strip scale → same simulated cycles) and
//! is skipped without a compile. (The argmax is subset-stable except
//! inside the scheduler's 0.01 % epc tie band; a candidate pruned in that
//! corner could differ only by an epsilon-equivalent schedule, and the
//! never-worse-than-default guarantee is unaffected because the default
//! point is always evaluated directly.)
//!
//! Together the two rules make the search run measurably fewer scheduler
//! invocations than the raw cross-product; the compile count is exposed
//! as `tune.sched_compiles` and asserted strictly below the cross-product
//! in tests.
//!
//! # Persistence
//!
//! With [`attach_global_disk`], finished searches are written to a
//! `tune-<version>` namespace keyed by (app, machine config, search
//! space). Warm restarts replay winners with **zero** searches — but
//! rehydrated entries are re-validated (both the default and the winning
//! program are rebuilt and re-simulated; the stored cycle counts must
//! still match) rather than trusted.
//!
//! # Environment overrides
//!
//! Read fresh on every call: `STREAM_TUNE_SEARCH=off` disables searching
//! entirely, `STREAM_TUNE_UNROLL` / `STREAM_TUNE_STRIPS` narrow the axes,
//! and `STREAM_TUNE_BUDGET` caps simulated candidates ([`TuneSpace::from_env`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod persist;
mod space;

pub use persist::attach_global_disk;
pub use space::{search_enabled, Candidate, TapeTier, TuneSpace};

use std::collections::BTreeMap;
use std::sync::Once;

use stream_apps::AppId;
use stream_ir::{Kernel, Tape};
use stream_machine::{Machine, SystemParams};
use stream_sched::{CompileOptions, SearchMemo};
use stream_sim::{simulate, StreamInstr, StreamProgram};
use stream_trace::Counter;

/// Work floor below which the native tier would refuse to engage anyway
/// (mirrors the native backend's own `MIN_WORK` gate): per-call records ×
/// tape loop length.
const NATIVE_WORK_FLOOR: u64 = 1 << 14;

static SEARCHES: Counter = Counter::new();
static REHYDRATED: Counter = Counter::new();
static PRUNED: Counter = Counter::new();
static CANDIDATES: Counter = Counter::new();
static SCHED_COMPILES: Counter = Counter::new();

fn ensure_registered() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        stream_trace::register_counter("tune.searches", &SEARCHES);
        stream_trace::register_counter("tune.rehydrated", &REHYDRATED);
        stream_trace::register_counter("tune.pruned", &PRUNED);
        stream_trace::register_counter("tune.candidates", &CANDIDATES);
        stream_trace::register_counter("tune.sched_compiles", &SCHED_COMPILES);
    });
}

/// Process-wide tuner counters (also exported through the metrics
/// registry as `tune.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneStats {
    /// Full searches run (a disk rehydration is not a search).
    pub searches: u64,
    /// Results served by the persistent tier after re-validation.
    pub rehydrated: u64,
    /// Candidates discarded by the MII lower bound before compiling.
    pub pruned: u64,
    /// Candidates actually simulated (includes each search's baseline).
    pub candidates: u64,
    /// Scheduler invocations attributed to tuning searches.
    pub sched_compiles: u64,
}

/// Reads the process-wide tuner counters.
pub fn stats() -> TuneStats {
    ensure_registered();
    TuneStats {
        searches: SEARCHES.get(),
        rehydrated: REHYDRATED.get(),
        pruned: PRUNED.get(),
        candidates: CANDIDATES.get(),
        sched_compiles: SCHED_COMPILES.get(),
    }
}

/// The tuner's verdict for one `(app, machine)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuned {
    /// Which application this tunes.
    pub app: AppId,
    /// The winning configuration (the default point if nothing beat it).
    pub candidate: Candidate,
    /// Simulated cycles of the default configuration.
    pub default_cycles: u64,
    /// Simulated cycles of the winner (`<= default_cycles` always).
    pub tuned_cycles: u64,
    /// Whether this result was rehydrated from the persistent tier.
    pub from_disk: bool,
    /// Candidates discarded by the lower bound in this call.
    pub pruned: u64,
    /// Candidates simulated in this call (0 when rehydrated/disabled).
    pub evaluated: u64,
    /// Scheduler compiles the global cache attributed to this call.
    pub sched_compiles: u64,
}

impl Tuned {
    /// Tuned-over-default speedup; `>= 1.0` by construction (the default
    /// point opens the search and ties break toward it).
    pub fn speedup(&self) -> f64 {
        self.default_cycles as f64 / self.tuned_cycles.max(1) as f64
    }
}

/// Per-kernel pruning state: the kernel, its memoized MII bounds, and the
/// total records the default program feeds it.
struct KernelBound {
    kernel: Kernel,
    memo: SearchMemo,
    records: u64,
}

/// One processed unroll set: which factor the scheduler actually chose
/// per kernel, and which strip scales have been covered with it.
struct SetRecord {
    set: Vec<u32>,
    picks: BTreeMap<String, u32>,
    strips: Vec<u32>,
}

/// The unroll factor the scheduler chose for each kernel of `program`.
fn unroll_picks(program: &StreamProgram) -> BTreeMap<String, u32> {
    let mut picks = BTreeMap::new();
    for instr in program.instrs() {
        if let StreamInstr::Kernel { kernel, .. } = instr {
            picks.insert(kernel.name().to_string(), kernel.unroll_factor());
        }
    }
    picks
}

fn kernel_record_totals(program: &StreamProgram) -> BTreeMap<String, u64> {
    let mut totals = BTreeMap::new();
    for instr in program.instrs() {
        if let StreamInstr::Kernel {
            kernel, records, ..
        } = instr
        {
            *totals.entry(kernel.name().to_string()).or_insert(0) += records;
        }
    }
    totals
}

/// Lower bound (in cycles) on any program running `bounds`' kernels with
/// an unroll-factor set `set`, from MII bounds alone. `None` only if some
/// kernel has no feasible factor in the set — impossible for the shipped
/// space (every set contains 1), but callers treat it as "cannot prune".
fn lower_bound(bounds: &mut [KernelBound], machine: &Machine, set: &[u32]) -> Option<f64> {
    let c = f64::from(machine.clusters());
    let mut lb = 0.0f64;
    for kb in bounds.iter_mut() {
        if kb.records == 0 {
            continue;
        }
        let mut best_ratio = f64::INFINITY;
        for &u in set {
            if let Some(b) = kb.memo.bounds(&kb.kernel, machine, u) {
                best_ratio = best_ratio.min(f64::from(b.mii()) / f64::from(u));
            }
        }
        if !best_ratio.is_finite() {
            return None;
        }
        lb += kb.records as f64 * best_ratio / c;
    }
    Some(lb)
}

/// Static cost of running `kernels` on `tier`, in scaled "interpreter
/// steps": loop ops weigh 8× hoisted ops (they run every iteration),
/// macro-batching earns a 7/8 discount on kernels it can legally batch,
/// and the planar rewrite pays a 9/8 penalty (the measured edge-transpose
/// loss on strips that fit in cache — see `TapeConfig::planar`).
fn tier_cost(kernels: &[Kernel], tier: TapeTier) -> u64 {
    let cfg = tier.config(false);
    kernels
        .iter()
        .map(|k| {
            let tape = Tape::compile_with(k, cfg);
            let mut c = (8 * tape.loop_len() + tape.hoisted_len()) as u64 * 8;
            if cfg.batch && tape.batchable() {
                c = c * 7 / 8;
            }
            if cfg.planar {
                c = c * 9 / 8;
            }
            c
        })
        .sum()
}

/// Picks the cheapest tape tier (ties to the earlier tier in
/// [`TapeTier::ALL`]) and decides the native policy: allow tier 3 only if
/// some call's work (records × loop length) clears the native tier's own
/// minimum-work gate — below that the attempt would just burn a `rustc`
/// invocation to then fall back.
fn pick_tier(kernels: &[Kernel], program: &StreamProgram) -> (TapeTier, bool) {
    let mut best = TapeTier::ALL[0];
    let mut best_cost = u64::MAX;
    for tier in TapeTier::ALL {
        let cost = tier_cost(kernels, tier);
        if cost < best_cost {
            best = tier;
            best_cost = cost;
        }
    }
    let loop_lens: BTreeMap<&str, u64> = kernels
        .iter()
        .map(|k| {
            (
                k.name(),
                Tape::compile_with(k, TapeTier::V2.config(false)).loop_len() as u64,
            )
        })
        .collect();
    let native_auto = program.instrs().iter().any(|i| {
        if let StreamInstr::Kernel {
            kernel, records, ..
        } = i
        {
            let len = loop_lens.get(kernel.name()).copied().unwrap_or(0);
            records.saturating_mul(len) >= NATIVE_WORK_FLOOR
        } else {
            false
        }
    });
    (best, native_auto)
}

fn default_report(id: AppId, machine: &Machine, sys: &SystemParams) -> (StreamProgram, u64) {
    let app = id.program_with(machine, &CompileOptions::default(), 1);
    let report = simulate(&app.program, machine, sys)
        .unwrap_or_else(|e| panic!("{id}: default program must simulate: {e}"));
    (app.program, report.cycles)
}

/// Validates a stored winner: both the default and the winning program
/// must rebuild and re-simulate to exactly the stored cycle counts.
fn revalidate(
    id: AppId,
    machine: &Machine,
    sys: &SystemParams,
    stored: &persist::StoredTuned,
) -> bool {
    let (_, default_cycles) = default_report(id, machine, sys);
    if default_cycles != stored.default_cycles {
        return false;
    }
    let app = id.program_with(
        machine,
        &stored.winner.compile_options(),
        stored.winner.strip_scale,
    );
    matches!(simulate(&app.program, machine, sys), Ok(r) if r.cycles == stored.tuned_cycles)
}

/// Tunes `id` for `machine` under `sys`: returns the fastest found
/// configuration, never slower than the default (which is always
/// evaluated first and wins ties).
///
/// Deterministic for a fixed (app, machine, system, environment): the
/// candidate order is fixed, the objective is the analytic simulator, and
/// no wall-clock measurement is involved — so results are identical at
/// any `--jobs` level and across runs.
pub fn tune_app(id: AppId, machine: &Machine, sys: &SystemParams) -> Tuned {
    ensure_registered();
    let compiles_before = stream_grid::global_cache().stats().compiles;

    if !search_enabled() {
        let (program, default_cycles) = default_report(id, machine, sys);
        let kernels = id.kernels(machine);
        let (tape, native_auto) = pick_tier(&kernels, &program);
        return Tuned {
            app: id,
            candidate: Candidate {
                tape,
                native_auto,
                ..Candidate::default_point()
            },
            default_cycles,
            tuned_cycles: default_cycles,
            from_disk: false,
            pruned: 0,
            evaluated: 0,
            sched_compiles: stream_grid::global_cache().stats().compiles - compiles_before,
        };
    }

    let space = TuneSpace::from_env();

    if let Some(stored) = persist::load(id.name(), machine, &space) {
        if revalidate(id, machine, sys, &stored) {
            REHYDRATED.incr();
            let delta = stream_grid::global_cache().stats().compiles - compiles_before;
            SCHED_COMPILES.add(delta);
            return Tuned {
                app: id,
                candidate: stored.winner,
                default_cycles: stored.default_cycles,
                tuned_cycles: stored.tuned_cycles,
                from_disk: true,
                pruned: 0,
                evaluated: 0,
                sched_compiles: delta,
            };
        }
    }

    SEARCHES.incr();
    let (default_program, default_cycles) = default_report(id, machine, sys);
    CANDIDATES.incr();

    let totals = kernel_record_totals(&default_program);
    let mut bounds: Vec<KernelBound> = id
        .kernels(machine)
        .into_iter()
        .map(|kernel| {
            let records = totals.get(kernel.name()).copied().unwrap_or(0);
            KernelBound {
                kernel,
                memo: SearchMemo::new(),
                records,
            }
        })
        .collect();

    let mut best = Candidate::default_point();
    let mut best_cycles = default_cycles;
    let mut pruned = 0u64;
    let mut evaluated = 1u64; // the default point
                              // The bound depends only on the unroll set, not the strip scale;
                              // memoize per set so the three strip variants share one computation.
    let mut lb_memo: Vec<(Vec<u32>, Option<f64>)> = Vec::new();
    // Processed (set, strip) points with the factors the scheduler chose,
    // for identity pruning (see the module docs): set → per-kernel picks
    // plus the strip scales already covered.
    let mut seen: Vec<SetRecord> = vec![SetRecord {
        set: Candidate::default_point().unroll_factors,
        picks: unroll_picks(&default_program),
        strips: vec![1],
    }];

    for cand in space.schedule_candidates().into_iter().skip(1) {
        if evaluated >= space.budget as u64 {
            break;
        }
        // Identity pruning: an evaluated superset whose chosen factors all
        // lie inside this candidate's set would make the scheduler pick
        // identically, so the program (at the same strip scale) is already
        // accounted for.
        let redundant = seen.iter().any(|r| {
            r.strips.contains(&cand.strip_scale)
                && cand.unroll_factors.iter().all(|u| r.set.contains(u))
                && r.picks.values().all(|u| cand.unroll_factors.contains(u))
        });
        if redundant {
            pruned += 1;
            PRUNED.incr();
            continue;
        }
        let lb = match lb_memo.iter().find(|(s, _)| *s == cand.unroll_factors) {
            Some((_, lb)) => *lb,
            None => {
                let lb = lower_bound(&mut bounds, machine, &cand.unroll_factors);
                lb_memo.push((cand.unroll_factors.clone(), lb));
                lb
            }
        };
        match lb {
            // No feasible factor at all: the compile would fail.
            None => {
                pruned += 1;
                PRUNED.incr();
                continue;
            }
            // Provably cannot beat the incumbent: skip without compiling.
            Some(lb) if lb >= best_cycles as f64 => {
                pruned += 1;
                PRUNED.incr();
                continue;
            }
            Some(_) => {}
        }
        evaluated += 1;
        CANDIDATES.incr();
        let app = id.program_with(machine, &cand.compile_options(), cand.strip_scale);
        match seen.iter_mut().find(|r| r.set == cand.unroll_factors) {
            Some(r) => r.strips.push(cand.strip_scale),
            None => seen.push(SetRecord {
                set: cand.unroll_factors.clone(),
                picks: unroll_picks(&app.program),
                strips: vec![cand.strip_scale],
            }),
        }
        // Infeasible programs (e.g. a strip batch that overflows the SRF)
        // are legal candidates that simply lose.
        if let Ok(r) = simulate(&app.program, machine, sys) {
            if r.cycles < best_cycles {
                best_cycles = r.cycles;
                best = cand;
            }
        }
    }

    let kernels: Vec<Kernel> = bounds.into_iter().map(|b| b.kernel).collect();
    let (tape, native_auto) = pick_tier(&kernels, &default_program);
    let winner = Candidate {
        tape,
        native_auto,
        ..best
    };

    let delta = stream_grid::global_cache().stats().compiles - compiles_before;
    SCHED_COMPILES.add(delta);

    persist::save(
        id.name(),
        machine,
        &space,
        &persist::StoredTuned {
            winner: winner.clone(),
            default_cycles,
            tuned_cycles: best_cycles,
        },
    );

    Tuned {
        app: id,
        candidate: winner,
        default_cycles,
        tuned_cycles: best_cycles,
        from_disk: false,
        pruned,
        evaluated,
        sched_compiles: delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_vlsi::Shape;

    fn sys() -> SystemParams {
        SystemParams::paper_2007()
    }

    #[test]
    fn tuner_never_loses_to_the_default() {
        let m = Machine::baseline();
        for id in AppId::ALL {
            let t = tune_app(id, &m, &sys());
            assert!(
                t.tuned_cycles <= t.default_cycles,
                "{id}: tuned {} > default {}",
                t.tuned_cycles,
                t.default_cycles
            );
            assert!(t.speedup() >= 1.0, "{id}");
            assert!(t.evaluated >= 1, "{id}");
        }
    }

    #[test]
    fn search_is_deterministic() {
        // Distinct shape so other tests' cache warmth cannot matter.
        let m = Machine::paper(Shape::new(4, 4));
        let a = tune_app(AppId::Conv, &m, &sys());
        let b = tune_app(AppId::Conv, &m, &sys());
        assert_eq!(a.candidate, b.candidate);
        assert_eq!(a.tuned_cycles, b.tuned_cycles);
        assert_eq!(a.default_cycles, b.default_cycles);
    }

    #[test]
    fn pruned_search_compiles_fewer_than_cross_product() {
        // Cold shape: nothing else in this test binary compiles at (16, 5).
        let m = Machine::paper(Shape::new(16, 5));
        let space = TuneSpace::default();
        let t = tune_app(AppId::Depth, &m, &sys());
        let exhaustive = space.cross_product_compiles(AppId::Depth.kernels(&m).len());
        assert!(
            t.sched_compiles < exhaustive,
            "pruned search ran {} scheduler compiles, cross-product needs {exhaustive}",
            t.sched_compiles
        );
        assert!(t.pruned > 0, "expected pruning to discard candidates");
        assert_eq!(t.pruned + t.evaluated, 21, "full space is 21 candidates");
    }

    #[test]
    fn identity_pruning_is_sound() {
        // The rule: if an evaluated superset's chosen factors all lie in a
        // subset, the subset compiles identically. Check it directly — the
        // default set's picks, offered alone, rebuild the same program.
        let m = Machine::baseline();
        let (default_program, _) = default_report(AppId::Depth, &m, &sys());
        let picks: Vec<u32> = unroll_picks(&default_program).into_values().collect();
        let mut factors = picks.clone();
        factors.sort_unstable();
        factors.dedup();
        let app =
            AppId::Depth.program_with(&m, &CompileOptions::default().unroll_factors(factors), 1);
        assert_eq!(
            format!("{default_program:?}"),
            format!("{:?}", app.program),
            "subset containing the chosen factors must compile identically"
        );
    }

    #[test]
    fn lower_bound_is_below_observed_cycles() {
        let m = Machine::baseline();
        let (program, cycles) = default_report(AppId::Conv, &m, &sys());
        let totals = kernel_record_totals(&program);
        let mut bounds: Vec<KernelBound> = AppId::Conv
            .kernels(&m)
            .into_iter()
            .map(|kernel| {
                let records = totals.get(kernel.name()).copied().unwrap_or(0);
                KernelBound {
                    kernel,
                    memo: SearchMemo::new(),
                    records,
                }
            })
            .collect();
        let lb = lower_bound(&mut bounds, &m, &[1, 2, 4, 8]).unwrap();
        assert!(
            lb <= cycles as f64,
            "bound {lb} exceeds observed {cycles} cycles"
        );
        assert!(lb > 0.0);
    }

    #[test]
    fn tier_choice_differentiates_apps() {
        let m = Machine::baseline();
        // CONV's convolve kernel uses COMM ops, which are not batchable;
        // RENDER's pipeline has batchable stages. The static tier cost must
        // see that difference.
        let conv = tune_app(AppId::Conv, &m, &sys());
        let render = tune_app(AppId::Render, &m, &sys());
        assert_eq!(conv.candidate.tape, TapeTier::V2);
        assert_eq!(render.candidate.tape, TapeTier::V2Batch);
    }

    #[test]
    fn stats_reflect_searches() {
        let m = Machine::baseline();
        let before = stats();
        let _ = tune_app(AppId::Fft1k, &m, &sys());
        let after = stats();
        assert!(after.searches > before.searches || after.rehydrated > before.rehydrated);
        assert!(after.candidates > before.candidates || after.rehydrated > before.rehydrated);
    }
}
