//! The tuner's candidate space: unroll policies × strip batching × tape
//! tier × native policy, plus the `STREAM_TUNE_*` environment overrides
//! that bound it.

use stream_ir::{LaneMode, NativeMode, StripMode, TapeConfig};
use stream_sched::CompileOptions;

/// Execution-tier choice for an application's kernels. The tiers mirror the
/// repo's tape generations: the tier only affects *functional* execution
/// throughput, never results (every tier is differential-tested bit-exact
/// against the legacy interpreter), so the tuner picks one with a static
/// cost model over the compiled tapes rather than by timing runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TapeTier {
    /// Fused superinstructions + lane-specialized dispatch (tape v2).
    V2,
    /// v2 plus serial iteration macro-batching where provably legal.
    V2Batch,
    /// v2 plus the planar (structure-of-arrays) input rewrite.
    V2Planar,
    /// The unfused, generic-lane v1 baseline.
    V1,
}

impl TapeTier {
    /// All tiers in deterministic preference order (ties in the static
    /// cost go to the earlier tier).
    pub const ALL: [TapeTier; 4] = [
        TapeTier::V2,
        TapeTier::V2Batch,
        TapeTier::V2Planar,
        TapeTier::V1,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            TapeTier::V2 => "v2",
            TapeTier::V2Batch => "v2-batch",
            TapeTier::V2Planar => "v2-planar",
            TapeTier::V1 => "v1",
        }
    }

    /// The [`TapeConfig`] this tier compiles with; `native_auto` selects
    /// the tier-3 native backend policy (V1 keeps native off — it *is* the
    /// baseline).
    pub fn config(&self, native_auto: bool) -> TapeConfig {
        let native = if native_auto && *self != TapeTier::V1 {
            NativeMode::Auto
        } else {
            NativeMode::Off
        };
        match self {
            TapeTier::V2 => TapeConfig {
                fuse: true,
                lanes: LaneMode::Specialized,
                strips: StripMode::Auto,
                batch: false,
                planar: false,
                native,
            },
            TapeTier::V2Batch => TapeConfig {
                batch: true,
                ..TapeTier::V2.config(native_auto)
            },
            TapeTier::V2Planar => TapeConfig {
                planar: true,
                ..TapeTier::V2.config(native_auto)
            },
            TapeTier::V1 => TapeConfig::v1_baseline(),
        }
    }

    fn encode(self) -> u8 {
        match self {
            TapeTier::V2 => 0,
            TapeTier::V2Batch => 1,
            TapeTier::V2Planar => 2,
            TapeTier::V1 => 3,
        }
    }

    fn decode(b: u8) -> Option<Self> {
        Some(match b {
            0 => TapeTier::V2,
            1 => TapeTier::V2Batch,
            2 => TapeTier::V2Planar,
            3 => TapeTier::V1,
            _ => return None,
        })
    }
}

/// One point of the search space. `unroll_factors` is the set the scheduler
/// may pick from (always containing 1, so candidate compiles never fail
/// outright); `strip_scale` batches that many natural strips per kernel
/// call in the application's stream program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Unroll factors the scheduler's search may choose between.
    pub unroll_factors: Vec<u32>,
    /// Natural strips batched per kernel call (1 = the default program).
    pub strip_scale: u32,
    /// Execution tier for the application's kernels.
    pub tape: TapeTier,
    /// Whether the tier-3 native backend is allowed to engage.
    pub native_auto: bool,
}

impl Candidate {
    /// The baseline: default scheduler options, no strip batching, default
    /// execution tier. Always evaluated first; the winner must beat it
    /// strictly or the tuner returns it unchanged.
    pub fn default_point() -> Self {
        Self {
            unroll_factors: CompileOptions::default().unroll_factors,
            strip_scale: 1,
            tape: TapeTier::V2Batch,
            native_auto: true,
        }
    }

    /// Scheduler options for this candidate.
    pub fn compile_options(&self) -> CompileOptions {
        CompileOptions::default().unroll_factors(self.unroll_factors.clone())
    }

    /// Whether the schedule-relevant axes match the default program's.
    pub fn is_schedule_default(&self) -> bool {
        let d = Candidate::default_point();
        self.unroll_factors == d.unroll_factors && self.strip_scale == 1
    }

    /// One-line display, e.g. `unroll<=4 strip=2 tape=v2-batch native=auto`.
    pub fn describe(&self) -> String {
        let cap = self.unroll_factors.iter().copied().max().unwrap_or(1);
        let unroll = if self.unroll_factors == Candidate::default_point().unroll_factors {
            "default".to_string()
        } else {
            format!("<={cap}")
        };
        format!(
            "unroll={unroll} strip={} tape={} native={}",
            self.strip_scale,
            self.tape.name(),
            if self.native_auto { "auto" } else { "off" }
        )
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.unroll_factors.len() as u32).to_le_bytes());
        for &u in &self.unroll_factors {
            out.extend_from_slice(&u.to_le_bytes());
        }
        out.extend_from_slice(&self.strip_scale.to_le_bytes());
        out.push(self.tape.encode());
        out.push(u8::from(self.native_auto));
    }

    pub(crate) fn decode(bytes: &[u8]) -> Option<(Self, usize)> {
        let mut at = 0usize;
        let take4 = |at: &mut usize| -> Option<[u8; 4]> {
            let b = bytes.get(*at..*at + 4)?;
            *at += 4;
            Some([b[0], b[1], b[2], b[3]])
        };
        let n = u32::from_le_bytes(take4(&mut at)?) as usize;
        if n > 64 {
            return None;
        }
        let mut unroll = Vec::with_capacity(n);
        for _ in 0..n {
            unroll.push(u32::from_le_bytes(take4(&mut at)?));
        }
        let strip = u32::from_le_bytes(take4(&mut at)?);
        let tape = TapeTier::decode(*bytes.get(at)?)?;
        at += 1;
        let native_auto = *bytes.get(at)? != 0;
        at += 1;
        Some((
            Self {
                unroll_factors: unroll,
                strip_scale: strip,
                tape,
                native_auto,
            },
            at,
        ))
    }
}

/// The (possibly env-bounded) candidate space the search enumerates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneSpace {
    /// Unroll-factor sets, default first.
    pub unroll_sets: Vec<Vec<u32>>,
    /// Strip-batching factors, 1 first.
    pub strip_scales: Vec<u32>,
    /// Maximum number of candidates simulated (the search budget); the
    /// default-point evaluation counts against it.
    pub budget: usize,
}

/// The unroll-factor sets the full space searches. Every set contains 1
/// (so candidate compiles cannot fail outright); `default` is the
/// scheduler's own 1/2/4/8 search, `deep` extends it past the default cap.
const UNROLL_SETS: [&[u32]; 7] = [
    &[1, 2, 4, 8], // default — must stay first
    &[1],
    &[1, 2],
    &[1, 2, 3],
    &[1, 2, 4],
    &[1, 2, 4, 6],
    &[1, 2, 4, 8, 12, 16], // deep
];

impl Default for TuneSpace {
    fn default() -> Self {
        Self {
            unroll_sets: UNROLL_SETS.iter().map(|s| s.to_vec()).collect(),
            strip_scales: vec![1, 2, 4],
            budget: usize::MAX,
        }
    }
}

impl TuneSpace {
    /// The full space, narrowed by any `STREAM_TUNE_*` environment
    /// overrides:
    ///
    /// * `STREAM_TUNE_UNROLL` — comma-separated unroll caps (`default`,
    ///   `deep`, or an integer from {1, 2, 3, 4, 6, 8}); the default set is
    ///   always searched first even when not listed.
    /// * `STREAM_TUNE_STRIPS` — comma-separated strip-batching factors;
    ///   1 is always included.
    /// * `STREAM_TUNE_BUDGET` — maximum candidates simulated per app.
    ///
    /// Variables are re-read on every call (no caching) so tests and
    /// operators can toggle them at runtime.
    pub fn from_env() -> Self {
        let mut space = Self::default();
        if let Ok(v) = std::env::var("STREAM_TUNE_UNROLL") {
            let mut sets: Vec<Vec<u32>> = vec![UNROLL_SETS[0].to_vec()];
            for tok in v.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let set: Option<&[u32]> = match tok {
                    "default" => Some(UNROLL_SETS[0]),
                    "deep" => Some(UNROLL_SETS[6]),
                    "1" => Some(UNROLL_SETS[1]),
                    "2" => Some(UNROLL_SETS[2]),
                    "3" => Some(UNROLL_SETS[3]),
                    "4" => Some(UNROLL_SETS[4]),
                    "6" => Some(UNROLL_SETS[5]),
                    "8" => Some(UNROLL_SETS[0]),
                    _ => None,
                };
                if let Some(s) = set {
                    if !sets.iter().any(|e| e == s) {
                        sets.push(s.to_vec());
                    }
                }
            }
            space.unroll_sets = sets;
        }
        if let Ok(v) = std::env::var("STREAM_TUNE_STRIPS") {
            let mut scales = vec![1u32];
            for tok in v.split(',').map(str::trim) {
                if let Ok(s) = tok.parse::<u32>() {
                    if (1..=64).contains(&s) && !scales.contains(&s) {
                        scales.push(s);
                    }
                }
            }
            space.strip_scales = scales;
        }
        if let Ok(v) = std::env::var("STREAM_TUNE_BUDGET") {
            if let Ok(b) = v.parse::<usize>() {
                space.budget = b.max(1);
            }
        }
        space
    }

    /// Schedule-relevant candidates in deterministic evaluation order,
    /// default point first. (Tape tier and native policy are chosen by the
    /// static tier cost afterwards — they do not affect simulated cycles,
    /// so enumerating them here would multiply compiles for nothing.)
    pub fn schedule_candidates(&self) -> Vec<Candidate> {
        let mut out = vec![Candidate::default_point()];
        for set in &self.unroll_sets {
            for &strip in &self.strip_scales {
                let c = Candidate {
                    unroll_factors: set.clone(),
                    strip_scale: strip,
                    ..Candidate::default_point()
                };
                if !c.is_schedule_default() {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Scheduler invocations an exhaustive search would need for an
    /// application with `n_kernels` kernels: one compile per (kernel,
    /// distinct option set). The pruned search's observed compile count is
    /// asserted strictly below this in tests.
    pub fn cross_product_compiles(&self, n_kernels: usize) -> u64 {
        (self.unroll_sets.len() * n_kernels) as u64
    }

    /// A stable fingerprint of the space, mixed into the persistence key so
    /// results found under a narrowed (env-overridden) space are never
    /// replayed as full-space winners.
    pub fn fingerprint(&self) -> u64 {
        let mut blob = Vec::new();
        for set in &self.unroll_sets {
            blob.extend_from_slice(&(set.len() as u32).to_le_bytes());
            for &u in set {
                blob.extend_from_slice(&u.to_le_bytes());
            }
        }
        blob.push(0xfe);
        for &s in &self.strip_scales {
            blob.extend_from_slice(&s.to_le_bytes());
        }
        blob.push(0xfd);
        blob.extend_from_slice(&(self.budget.min(1 << 32) as u64).to_le_bytes());
        stream_store::fnv1a(&blob)
    }
}

/// True unless `STREAM_TUNE_SEARCH` disables searching (`off`, `0`,
/// `false`): the tuner then returns the default configuration untouched.
pub fn search_enabled() -> bool {
    match std::env::var("STREAM_TUNE_SEARCH") {
        Ok(v) => !matches!(v.trim(), "off" | "0" | "false" | "no"),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_point_is_first_and_unique() {
        let space = TuneSpace::default();
        let cands = space.schedule_candidates();
        assert!(cands[0].is_schedule_default());
        assert_eq!(cands.iter().filter(|c| c.is_schedule_default()).count(), 1);
        // 7 unroll sets x 3 strips = 21 points, one of which is default.
        assert_eq!(cands.len(), 21);
    }

    #[test]
    fn every_unroll_set_contains_one() {
        for set in TuneSpace::default().unroll_sets {
            assert!(set.contains(&1), "{set:?} could fail to compile");
        }
    }

    #[test]
    fn candidate_roundtrips_through_bytes() {
        let c = Candidate {
            unroll_factors: vec![1, 2, 4, 6],
            strip_scale: 4,
            tape: TapeTier::V2Planar,
            native_auto: false,
        };
        let mut bytes = Vec::new();
        c.encode(&mut bytes);
        let (back, used) = Candidate::decode(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(used, bytes.len());
        assert!(Candidate::decode(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn tier_configs_differ_where_expected() {
        let v2 = TapeTier::V2.config(true);
        assert!(v2.fuse && !v2.batch && !v2.planar);
        assert!(TapeTier::V2Batch.config(true).batch);
        assert!(TapeTier::V2Planar.config(true).planar);
        let v1 = TapeTier::V1.config(true);
        assert!(!v1.fuse);
        assert_eq!(v1, stream_ir::TapeConfig::v1_baseline());
    }

    #[test]
    fn fingerprint_tracks_the_space() {
        let a = TuneSpace::default().fingerprint();
        let narrowed = TuneSpace {
            strip_scales: vec![1, 2],
            ..TuneSpace::default()
        };
        assert_ne!(a, narrowed.fingerprint());
    }
}
