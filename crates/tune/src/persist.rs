//! Persistent tuning results: a `stream-store` namespace keyed by
//! (application, machine configuration, search space), so warm restarts
//! replay winners instead of re-running searches.
//!
//! Rehydrated winners are **re-validated, not trusted**: the caller
//! rebuilds both the default and the winning program and re-simulates
//! them; the stored entry is only honored when both cycle counts still
//! match. Anything else — a changed cost model, simulator, scheduler, or
//! a corrupt payload — falls through to a full search that overwrites the
//! stale entry.

use std::io;
use std::path::Path;
use std::sync::OnceLock;

use stream_machine::Machine;
use stream_store::{DiskStore, Key};

use crate::space::{Candidate, TuneSpace};

/// Bump when the payload layout or its semantics change; stale versions
/// land in a different namespace directory and are simply never read.
const FORMAT_VERSION: u32 = 1;

/// Namespace carries the crate version, like the serve planner's results
/// tier: a rebuilt binary never replays winners tuned by another build.
const NAMESPACE: &str = concat!("tune-", env!("CARGO_PKG_VERSION"));

static DISK: OnceLock<DiskStore> = OnceLock::new();

/// Attaches the process-wide persistent tuning-results tier rooted at
/// `root`. Every search completed after this call is written through, and
/// later processes (or a restarted one) rehydrate validated winners with
/// zero searches. Returns `false` if a tier was already attached (the
/// existing one is kept).
///
/// # Errors
///
/// Propagates the failure to create or open the store directory.
pub fn attach_global_disk(root: &Path) -> io::Result<bool> {
    if DISK.get().is_some() {
        return Ok(false);
    }
    let store = DiskStore::open(root, NAMESPACE, FORMAT_VERSION)?;
    Ok(DISK.set(store).is_ok())
}

/// A decoded stored result, pending re-validation by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StoredTuned {
    pub winner: Candidate,
    pub default_cycles: u64,
    pub tuned_cycles: u64,
}

/// The key material ties a result to everything that could change it:
/// the app, the machine's shape *and* technology fingerprint, the search
/// space (env overrides narrow it → different key), and the format
/// version. Sections are u32-le length-framed so no field can bleed into
/// its neighbor.
fn key_material(app: &str, machine: &Machine, space: &TuneSpace) -> Vec<u8> {
    let cfg = machine.config();
    let mut blob = Vec::with_capacity(64);
    let section = |bytes: &[u8], out: &mut Vec<u8>| {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    };
    section(b"stream-tune.key", &mut blob);
    section(app.as_bytes(), &mut blob);
    section(&cfg.shape.clusters.to_le_bytes(), &mut blob);
    section(&cfg.shape.alus_per_cluster.to_le_bytes(), &mut blob);
    section(&cfg.params_fingerprint.to_le_bytes(), &mut blob);
    section(&space.fingerprint().to_le_bytes(), &mut blob);
    section(&FORMAT_VERSION.to_le_bytes(), &mut blob);
    blob
}

fn encode(material: &[u8], stored: &StoredTuned) -> Vec<u8> {
    let mut payload = Vec::with_capacity(material.len() + 64);
    payload.extend_from_slice(&(material.len() as u32).to_le_bytes());
    payload.extend_from_slice(material);
    stored.winner.encode(&mut payload);
    payload.extend_from_slice(&stored.default_cycles.to_le_bytes());
    payload.extend_from_slice(&stored.tuned_cycles.to_le_bytes());
    payload
}

/// `None` on any structural mismatch — truncation, trailing garbage, or
/// embedded key material that differs from what we looked up (a hash
/// collision or cross-namespace mixup); corrupt entries read as misses.
fn decode(payload: &[u8], material: &[u8]) -> Option<StoredTuned> {
    let len = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    let mut at = 4usize;
    if payload.get(at..at + len)? != material {
        return None;
    }
    at += len;
    let (winner, used) = Candidate::decode(payload.get(at..)?)?;
    at += used;
    let default_cycles = u64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
    at += 8;
    let tuned_cycles = u64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
    at += 8;
    if at != payload.len() {
        return None;
    }
    Some(StoredTuned {
        winner,
        default_cycles,
        tuned_cycles,
    })
}

/// Loads the stored result for `(app, machine, space)`, if a disk tier is
/// attached and holds a structurally valid entry. The caller still
/// re-validates cycle counts before honoring it.
pub(crate) fn load(app: &str, machine: &Machine, space: &TuneSpace) -> Option<StoredTuned> {
    let disk = DISK.get()?;
    let material = key_material(app, machine, space);
    let payload = disk.get(Key::of(&material))?;
    decode(&payload, &material)
}

/// Writes `stored` through to the disk tier, if one is attached. Write
/// failures are swallowed: persistence is an accelerator, never a
/// correctness dependency.
pub(crate) fn save(app: &str, machine: &Machine, space: &TuneSpace, stored: &StoredTuned) {
    if let Some(disk) = DISK.get() {
        let material = key_material(app, machine, space);
        let _ = disk.put(Key::of(&material), &encode(&material, stored));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::TapeTier;

    fn sample() -> StoredTuned {
        StoredTuned {
            winner: Candidate {
                unroll_factors: vec![1, 2, 4],
                strip_scale: 2,
                tape: TapeTier::V2Batch,
                native_auto: true,
            },
            default_cycles: 123_456,
            tuned_cycles: 98_765,
        }
    }

    #[test]
    fn payload_roundtrips() {
        let m = Machine::baseline();
        let material = key_material("CONV", &m, &TuneSpace::default());
        let stored = sample();
        let payload = encode(&material, &stored);
        assert_eq!(decode(&payload, &material), Some(stored));
    }

    #[test]
    fn truncated_or_padded_payloads_are_misses() {
        let m = Machine::baseline();
        let material = key_material("CONV", &m, &TuneSpace::default());
        let payload = encode(&material, &sample());
        for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
            assert_eq!(decode(&payload[..cut], &material), None, "cut at {cut}");
        }
        let mut padded = payload.clone();
        padded.push(0);
        assert_eq!(decode(&padded, &material), None);
    }

    #[test]
    fn key_material_separates_machines_spaces_and_apps() {
        let space = TuneSpace::default();
        let base = key_material("CONV", &Machine::baseline(), &space);
        let big = Machine::paper(stream_vlsi::Shape::new(64, 8));
        assert_ne!(base, key_material("CONV", &big, &space));
        assert_ne!(base, key_material("QRD", &Machine::baseline(), &space));
        let narrowed = TuneSpace {
            strip_scales: vec![1],
            ..TuneSpace::default()
        };
        assert_ne!(base, key_material("CONV", &Machine::baseline(), &narrowed));
    }
}
