//! `STREAM_TUNE_*` environment overrides, exercised end to end.
//!
//! Environment variables are process-global, so this lives in its own
//! integration-test binary and runs as a single sequential test: nothing
//! else in the process reads or writes the `STREAM_TUNE_*` family while it
//! manipulates them.

use stream_machine::{Machine, SystemParams};
use stream_tune::{search_enabled, tune_app, TuneSpace};
use stream_vlsi::Shape;

fn clear_env() {
    for var in [
        "STREAM_TUNE_SEARCH",
        "STREAM_TUNE_UNROLL",
        "STREAM_TUNE_STRIPS",
        "STREAM_TUNE_BUDGET",
    ] {
        std::env::remove_var(var);
    }
}

#[test]
fn env_overrides_narrow_disable_and_budget_the_search() {
    clear_env();
    let machine = Machine::paper(Shape::new(4, 4));
    let sys = SystemParams::paper_2007();

    // Baseline sanity: searching is on and the full space is real.
    assert!(search_enabled());
    let full = TuneSpace::from_env();
    assert_eq!(full.unroll_sets.len(), 7);
    assert_eq!(full.strip_scales, vec![1, 2, 4]);

    // STREAM_TUNE_SEARCH=off: the tuner returns the default configuration
    // without evaluating a single candidate (the tape tier is still chosen
    // — it never changes simulated cycles).
    std::env::set_var("STREAM_TUNE_SEARCH", "off");
    assert!(!search_enabled());
    let t = tune_app(stream_apps::AppId::Conv, &machine, &sys);
    assert_eq!(t.evaluated, 0, "disabled search evaluated a candidate");
    assert_eq!(t.tuned_cycles, t.default_cycles);
    assert!(t.candidate.is_schedule_default());
    std::env::remove_var("STREAM_TUNE_SEARCH");

    // Narrowing: one extra unroll set, one extra strip factor. The default
    // set and strip 1 are always retained, so the tuner still cannot lose.
    std::env::set_var("STREAM_TUNE_UNROLL", "1");
    std::env::set_var("STREAM_TUNE_STRIPS", "2");
    let narrowed = TuneSpace::from_env();
    assert_eq!(narrowed.unroll_sets, vec![vec![1, 2, 4, 8], vec![1]]);
    assert_eq!(narrowed.strip_scales, vec![1, 2]);
    // 2 sets x 2 strips, minus the default point counted once up front.
    assert_eq!(narrowed.schedule_candidates().len(), 4);
    // A narrowed space persists under a different key than the full one.
    assert_ne!(narrowed.fingerprint(), full.fingerprint());
    let t = tune_app(stream_apps::AppId::Conv, &machine, &sys);
    assert!(t.evaluated + t.pruned <= 4, "{t:?}");
    assert!(
        t.candidate.unroll_factors == vec![1, 2, 4, 8] || t.candidate.unroll_factors == vec![1],
        "winner outside the narrowed space: {t:?}"
    );
    assert!([1, 2].contains(&t.candidate.strip_scale), "{t:?}");
    assert!(t.speedup() >= 1.0);

    // Garbage tokens are ignored, never a crash; an all-garbage list
    // degenerates to the default set alone.
    std::env::set_var("STREAM_TUNE_UNROLL", "zzz,5,-1");
    assert_eq!(TuneSpace::from_env().unroll_sets, vec![vec![1, 2, 4, 8]]);
    std::env::remove_var("STREAM_TUNE_UNROLL");
    std::env::remove_var("STREAM_TUNE_STRIPS");

    // STREAM_TUNE_BUDGET=1: only the default point is evaluated, so the
    // result is exactly the default configuration.
    std::env::set_var("STREAM_TUNE_BUDGET", "1");
    assert_eq!(TuneSpace::from_env().budget, 1);
    let t = tune_app(stream_apps::AppId::Depth, &machine, &sys);
    assert_eq!(t.evaluated, 1, "{t:?}");
    assert_eq!(t.tuned_cycles, t.default_cycles);
    assert!(t.candidate.is_schedule_default());
    // A budget of 0 is clamped up: the default must always be evaluated.
    std::env::set_var("STREAM_TUNE_BUDGET", "0");
    assert_eq!(TuneSpace::from_env().budget, 1);

    clear_env();
}
