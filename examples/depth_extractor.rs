//! Stereo depth extraction end to end: run the DEPTH pipeline functionally
//! on a synthetic stereo pair, print the recovered disparity map, and time
//! the paper-scale dataset across machines.
//!
//! Run with: `cargo run --release --example depth_extractor`

use stream_scaling::apps::depth::{self, Config};
use stream_scaling::machine::{Machine, SystemParams};
use stream_scaling::sim::simulate;
use stream_scaling::vlsi::Shape;

fn main() {
    // Functional: recover the disparity of a synthetic shifted pair.
    let cfg = Config {
        width: 48,
        height: 10,
        disparities: 4,
    };
    let map = depth::run_functional(&cfg, 8);
    println!("recovered disparity map ({} rows):", map.len());
    for row in &map {
        let line: String = row
            .iter()
            .map(|&d| char::from_digit(d as u32 % 10, 10).unwrap_or('?'))
            .collect();
        println!("  {line}");
    }
    let hits: usize = map.iter().flatten().filter(|&&d| d == 2).count();
    let total: usize = map.iter().map(Vec::len).sum();
    println!("true disparity (2) recovered at {hits}/{total} pixels\n");

    // Timing at paper scale (512x384, 16 disparities).
    let sys = SystemParams::paper_2007();
    let paper = Config::paper();
    let base = {
        let m = Machine::baseline();
        simulate(&depth::program(&paper, &m).program, &m, &sys).expect("simulates")
    };
    println!(
        "{:<12} {:>12} {:>8} {:>9} {:>8}",
        "machine", "cycles", "GOPS", "speedup", "util"
    );
    for (c, n) in [(8u32, 5u32), (32, 5), (128, 5), (128, 10)] {
        let m = Machine::paper(Shape::new(c, n));
        let r = simulate(&depth::program(&paper, &m).program, &m, &sys).expect("simulates");
        println!(
            "{:<12} {:>12} {:>8.1} {:>8.1}x {:>8.2}",
            format!("C={c} N={n}"),
            r.cycles,
            r.gops(1.0),
            base.cycles as f64 / r.cycles as f64,
            r.cluster_utilization()
        );
    }
    println!("\npaper: DEPTH sustains 328 GOPS at C=128 N=10, an 11.6x speedup.");
}
