//! The FFT workload end to end: functional verification of a 1024-point
//! transform against the reference FFT, then timing of FFT1K and FFT4K on
//! machines from 40 to 1280 ALUs — reproducing the paper's short-stream and
//! SRF-spill effects (Section 5.3).
//!
//! Run with: `cargo run --release --example fft_pipeline`

use stream_scaling::apps::fft_app::{self, Config};
use stream_scaling::machine::{Machine, SystemParams};
use stream_scaling::sim::simulate;
use stream_scaling::vlsi::Shape;

fn main() {
    // Functional: the kernel-composed FFT matches the reference spectrum.
    let cfg = Config { points: 1024 };
    let got = fft_app::run_functional(&cfg, 8);
    let want = fft_app::reference(&cfg);
    let max_err = got
        .iter()
        .zip(&want)
        .map(|(g, w)| (g.0 - w.0).abs().max((g.1 - w.1).abs()))
        .fold(0.0f32, f32::max);
    println!("1024-point FFT through the butterfly kernel: max |err| = {max_err:.4}");
    assert!(max_err < 0.1, "FFT verification failed");

    // Timing: FFT1K vs FFT4K across machines.
    let sys = SystemParams::paper_2007();
    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>10} {:>16}",
        "machine", "FFT1K cyc", "GFLOPS", "FFT4K cyc", "GFLOPS", "twiddles in SRF?"
    );
    for (c, n) in [(8u32, 5u32), (32, 5), (128, 5), (128, 10)] {
        let m = Machine::paper(Shape::new(c, n));
        let r1 = simulate(&fft_app::program(&Config::fft1k(), &m).program, &m, &sys)
            .expect("fft1k simulates");
        let r4 = simulate(&fft_app::program(&Config::fft4k(), &m).program, &m, &sys)
            .expect("fft4k simulates");
        println!(
            "{:<12} {:>10} {:>10.1} {:>10} {:>10.1} {:>16}",
            format!("C={c} N={n}"),
            r1.cycles,
            r1.gops(1.0),
            r4.cycles,
            r4.gops(1.0),
            if fft_app::twiddles_resident(&Config::fft4k(), &m) {
                "yes"
            } else {
                "no (spills)"
            }
        );
    }
    println!("\npaper: FFT4K is slower per point than FFT1K on the baseline (SRF spill),");
    println!("but sustains 211 vs 103 GFLOPS at C=128 N=10 (stream length effect).");
}
