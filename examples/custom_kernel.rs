//! Build a custom media kernel with the IR builder, verify it functionally,
//! and watch its schedule change across machine configurations — the
//! complete "bring your own kernel" workflow.
//!
//! Run with: `cargo run --example custom_kernel`

use stream_ir::{execute, ExecConfig, KernelBuilder, Scalar, Ty};
use stream_scaling::machine::Machine;
use stream_scaling::vlsi::Shape;
use stream_sched::CompiledKernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An alpha-blend kernel: out = a*src + (1-a)*dst, with a per-pixel
    // alpha stream — three inputs, one output, six ALU ops per pixel.
    let mut b = KernelBuilder::new("alpha_blend");
    let src_s = b.in_stream(Ty::F32);
    let dst_s = b.in_stream(Ty::F32);
    let alpha_s = b.in_stream(Ty::F32);
    let out_s = b.out_stream(Ty::F32);
    let src = b.read(src_s);
    let dst = b.read(dst_s);
    let alpha = b.read(alpha_s);
    let one = b.const_f(1.0);
    let inv = b.sub(one, alpha);
    let fore = b.mul(alpha, src);
    let back = b.mul(inv, dst);
    let blended = b.add(fore, back);
    b.write(out_s, blended);
    let kernel = b.finish()?;

    // Functional check against the obvious scalar loop.
    let n = 64;
    let src: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let dst: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
    let alpha: Vec<f32> = (0..n).map(|i| (i % 5) as f32 / 4.0).collect();
    let to_words = |v: &[f32]| v.iter().map(|&x| Scalar::F32(x)).collect::<Vec<_>>();
    let outs = execute(
        &kernel,
        &[],
        &[to_words(&src), to_words(&dst), to_words(&alpha)],
        &ExecConfig::with_clusters(8),
    )?;
    for i in 0..n {
        let want = alpha[i] * src[i] + (1.0 - alpha[i]) * dst[i];
        let got = outs[0][i].as_f32().expect("f32 output");
        assert!((got - want).abs() < 1e-5);
    }
    println!("functional check passed on {n} pixels");

    // The portable textual form (parseable back with `parse_kernel`).
    println!("\n== kernel text ==\n{}", stream_ir::to_text(&kernel));

    // Compile for a range of machines and report the schedule.
    println!(
        "{:<14} {:>4} {:>7} {:>7} {:>12} {:>14}",
        "machine", "II", "unroll", "stages", "elems/cycle", "GOPS @ 1 GHz"
    );
    for (c, n) in [(8u32, 2u32), (8, 5), (8, 10), (64, 5), (128, 10)] {
        let machine = Machine::paper(Shape::new(c, n));
        let compiled = CompiledKernel::compile_default(&kernel, &machine)?;
        println!(
            "{:<14} {:>4} {:>7} {:>7} {:>12.3} {:>14.1}",
            format!("C={c} N={n}"),
            compiled.ii(),
            compiled.unroll_factor(),
            compiled.stages(),
            compiled.elements_per_cycle(),
            compiled.alu_ops_per_cycle()
        );
    }

    // And the steady-state VLIW listing on the baseline machine.
    let compiled = CompiledKernel::compile_default(&kernel, &Machine::baseline())?;
    println!("\n== VLIW listing (C=8 N=5) ==\n{}", compiled.listing());
    Ok(())
}
