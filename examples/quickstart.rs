//! Quickstart: evaluate the VLSI cost model, compile a kernel, and time an
//! application — the three layers of the library in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use stream_ir::{KernelBuilder, Ty};
use stream_scaling::machine::{Machine, SystemParams};
use stream_scaling::vlsi::{CostModel, Shape};
use stream_sched::CompiledKernel;
use stream_sim::{simulate, ProgramBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. VLSI cost model (paper Section 3): how much does a 640-ALU stream
    //    processor cost relative to today's 40-ALU machine?
    let model = CostModel::paper();
    let base = model.evaluate(Shape::BASELINE); // C=8,  N=5
    let big = model.evaluate(Shape::HEADLINE_640); // C=128, N=5
    println!(
        "== VLSI scaling: {} -> {} ==",
        Shape::BASELINE,
        Shape::HEADLINE_640
    );
    println!(
        "area per ALU:   {:+.1}%",
        (big.area.per_alu() / base.area.per_alu() - 1.0) * 100.0
    );
    println!(
        "energy per op:  {:+.1}%",
        (big.energy.per_alu_op() / base.energy.per_alu_op() - 1.0) * 100.0
    );
    println!(
        "COMM latency:   {} -> {} cycles",
        base.delay.intercluster_cycles(),
        big.delay.intercluster_cycles()
    );

    // 2. Write a kernel (KernelC-equivalent) and compile it for both
    //    machines (paper Section 5.1).
    let mut b = KernelBuilder::new("saxpy");
    let xs = b.in_stream(Ty::F32);
    let ys = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    let a = b.param(Ty::F32);
    let x = b.read(xs);
    let y = b.read(ys);
    let ax = b.mul(a, x);
    let r = b.add(ax, y);
    b.write(out, r);
    let kernel = b.finish()?;

    println!("\n== kernel compilation ==");
    let mut compiled = None;
    for shape in [Shape::BASELINE, Shape::HEADLINE_640] {
        let machine = Machine::paper(shape);
        let c = CompiledKernel::compile_default(&kernel, &machine)?;
        println!("{shape}: {c}");
        compiled = Some((machine, c));
    }

    // 3. Time a whole stream program on the big machine (paper Section 5.3).
    let (machine, c) = compiled.expect("compiled above");
    let n = 1 << 16;
    let mut p = ProgramBuilder::new();
    let x_stream = p.load("x", n);
    let y_stream = p.load("y", n);
    let outs = p.kernel(&c, &[x_stream, y_stream], &[n], n);
    p.store(outs[0]);
    let report = simulate(&p.finish(), &machine, &SystemParams::paper_2007())?;
    println!("\n== stream program on {} ==", machine);
    println!(
        "{} cycles, {:.1} GOPS sustained, {:.0}% cluster utilization",
        report.cycles,
        report.gops(1.0),
        report.cluster_utilization() * 100.0
    );
    Ok(())
}
