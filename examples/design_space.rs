//! Design-space exploration: sweep `(C, N)` like the paper's Section 4 and
//! print the cost landscape with the most efficient configurations.
//!
//! Run with: `cargo run --example design_space`

use stream_scaling::vlsi::{CostModel, Shape};
use stream_scaling::{Metric, SpaceQuery};

fn main() {
    let model = CostModel::paper();
    let cs = [8u32, 16, 32, 64, 128, 256];
    let ns = [2u32, 5, 10, 14, 16];
    let base = model.evaluate(Shape::BASELINE);
    let base_area = base.area.per_alu();
    let base_energy = base.energy.per_alu_op();

    println!("area per ALU (normalized to C=8 N=5); rows = N, cols = C");
    print!("{:>6}", "N\\C");
    for &c in &cs {
        print!("{c:>8}");
    }
    println!();
    for &n in &ns {
        print!("{n:>6}");
        for &c in &cs {
            let shape = Shape::new(c, n);
            let r = model.evaluate(shape);
            print!("{:>8.3}", r.area.per_alu() / base_area);
        }
        println!();
    }

    // The typed query API answers "which configuration?" questions directly
    // (the same solver the `stream-serve` daemon exposes as POST /v1/query).
    let best = SpaceQuery::minimize(Metric::AreaPerAlu)
        .clusters(cs)
        .alus_per_cluster(ns)
        .solve()
        .expect("unconstrained query is always feasible");
    println!(
        "\nmost area-efficient: {} ({:.3}x baseline, {} cells evaluated)",
        best.shape,
        best.value / base_area,
        best.evaluated
    );

    // Constrained form: the cheapest energy/op once area is capped near the
    // baseline's budget.
    let frugal = SpaceQuery::minimize(Metric::EnergyPerOp)
        .clusters(cs)
        .alus_per_cluster(ns)
        .subject_to(Metric::AreaPerAlu, base_area * 1.05)
        .solve()
        .expect("baseline itself satisfies the cap");
    println!(
        "lowest energy/op with area/ALU <= 1.05x baseline: {} ({:.3}x baseline energy)",
        frugal.shape,
        frugal.value / base_energy
    );

    println!("\nenergy per ALU op (normalized); rows = N, cols = C");
    print!("{:>6}", "N\\C");
    for &c in &cs {
        print!("{c:>8}");
    }
    println!();
    for &n in &ns {
        print!("{n:>6}");
        for &c in &cs {
            let r = model.evaluate(Shape::new(c, n));
            print!("{:>8.3}", r.energy.per_alu_op() / base_energy);
        }
        println!();
    }

    println!("\nswitch delays (FO4): intracluster grows with N, intercluster with C");
    for &n in &[5u32, 10, 16] {
        for &c in &[8u32, 64, 256] {
            let d = model.evaluate(Shape::new(c, n)).delay;
            println!(
                "C={c:>3} N={n:>2}: t_intra {:>6.1}  t_inter {:>6.1}  (COMM {} cycles)",
                d.intracluster_fo4,
                d.intercluster_fo4,
                d.intercluster_cycles()
            );
        }
    }
}
