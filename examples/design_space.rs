//! Design-space exploration: sweep `(C, N)` like the paper's Section 4 and
//! print the cost landscape with the most efficient configurations.
//!
//! Run with: `cargo run --example design_space`

use stream_scaling::vlsi::{CostModel, Shape};

fn main() {
    let model = CostModel::paper();
    let cs = [8u32, 16, 32, 64, 128, 256];
    let ns = [2u32, 5, 10, 14, 16];
    let base = model.evaluate(Shape::BASELINE);
    let base_area = base.area.per_alu();
    let base_energy = base.energy.per_alu_op();

    println!("area per ALU (normalized to C=8 N=5); rows = N, cols = C");
    print!("{:>6}", "N\\C");
    for &c in &cs {
        print!("{c:>8}");
    }
    println!();
    let mut best = (f64::MAX, Shape::BASELINE);
    for &n in &ns {
        print!("{n:>6}");
        for &c in &cs {
            let shape = Shape::new(c, n);
            let r = model.evaluate(shape);
            let rel = r.area.per_alu() / base_area;
            if rel < best.0 {
                best = (rel, shape);
            }
            print!("{rel:>8.3}");
        }
        println!();
    }
    println!(
        "\nmost area-efficient: {} ({:.3}x baseline)",
        best.1, best.0
    );

    println!("\nenergy per ALU op (normalized); rows = N, cols = C");
    print!("{:>6}", "N\\C");
    for &c in &cs {
        print!("{c:>8}");
    }
    println!();
    for &n in &ns {
        print!("{n:>6}");
        for &c in &cs {
            let r = model.evaluate(Shape::new(c, n));
            print!("{:>8.3}", r.energy.per_alu_op() / base_energy);
        }
        println!();
    }

    println!("\nswitch delays (FO4): intracluster grows with N, intercluster with C");
    for &n in &[5u32, 10, 16] {
        for &c in &[8u32, 64, 256] {
            let d = model.evaluate(Shape::new(c, n)).delay;
            println!(
                "C={c:>3} N={n:>2}: t_intra {:>6.1}  t_inter {:>6.1}  (COMM {} cycles)",
                d.intracluster_fo4,
                d.intercluster_fo4,
                d.intercluster_cycles()
            );
        }
    }
}
