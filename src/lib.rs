#![warn(missing_docs)]
//! # stream-scaling
//!
//! A full reproduction of *Exploring the VLSI Scalability of Stream
//! Processors* (Khailany, Dally, Rixner, Kapasi, Owens, Towles —
//! HPCA 2003): analytical VLSI cost models, a KernelC-equivalent kernel IR
//! with a software-pipelining VLIW compiler, the paper's kernel and
//! application suites, and a stream-level cycle simulator — everything
//! needed to regenerate the paper's tables and figures.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`vlsi`] — Section 3 cost models (area/delay/energy vs `C`, `N`),
//! * [`machine`] — elaborated machine configurations and latencies,
//! * [`ir`] — the kernel dataflow IR, builder, and SIMD interpreter,
//! * [`sched`] — dependence graphs and iterative modulo scheduling,
//! * [`grid`] — the parallel sweep engine and shared compiled-kernel cache,
//! * [`kernels`] — Blocksad, Convolve, Update, FFT, Noise, Irast,
//! * [`sim`] — the stream-program timing simulator,
//! * [`apps`] — RENDER, DEPTH, CONV, QRD, FFT1K, FFT4K,
//! * [`verify`] — independent schedule verification and IR lints,
//! * [`tapecheck`] — translation validation for compiled execution tapes,
//! * [`repro`] — per-table/figure reproduction reports,
//! * [`store`] — the corruption-tolerant on-disk key/value store,
//! * [`serve`] — the `stream-serve` query daemon and its planner,
//! * [`tune`] — cost-guided per-application auto-tuning.
//!
//! The typed query API ([`Query`], [`SpaceQuery`], [`Metric`]) is the one
//! public way to describe work; the `repro` CLI and the `stream-serve`
//! daemon are both thin shims over it.
//!
//! # Examples
//!
//! ```
//! use stream_scaling::vlsi::{CostModel, Shape};
//!
//! // The paper's headline: scaling 40 -> 640 ALUs costs only a few
//! // percent in per-ALU area and energy.
//! let model = CostModel::paper();
//! let base = model.evaluate(Shape::BASELINE);
//! let big = model.evaluate(Shape::HEADLINE_640);
//! assert!(big.area.per_alu() / base.area.per_alu() < 1.08);
//! ```

pub use stream_apps as apps;
pub use stream_grid as grid;
pub use stream_ir as ir;
pub use stream_kernels as kernels;
pub use stream_machine as machine;
pub use stream_repro as repro;
pub use stream_sched as sched;
pub use stream_serve as serve;
pub use stream_sim as sim;
pub use stream_store as store;
pub use stream_tapecheck as tapecheck;
pub use stream_tune as tune;
pub use stream_verify as verify;
pub use stream_vlsi as vlsi;

pub use stream_repro::{Constraint, Metric, Query, SpaceAnswer, SpaceQuery};
