//! End-to-end: every kernel in the suite must pass the independent
//! verifier and lint clean — both as built IR and through its textual
//! round-trip — and the verifier must reject corrupted schedules for the
//! same kernels.

use stream_scaling::ir::to_text;
use stream_scaling::kernels::KernelId;
use stream_scaling::machine::Machine;
use stream_scaling::sched::{
    check_schedule, modulo_schedule, CompileOptions, CompiledKernel, Ddg, ModuloSchedule,
};
use stream_scaling::verify::{lint_kernel, lint_text};

#[test]
fn suite_schedules_pass_the_independent_verifier() {
    let machine = Machine::baseline();
    for id in KernelId::ALL {
        let kernel = id.build(&machine);
        let ddg = Ddg::build(&kernel, &machine);
        let (sched, _) =
            modulo_schedule(&ddg, &machine).unwrap_or_else(|| panic!("{id:?} failed to schedule"));
        let report = check_schedule(&ddg, &sched, &machine);
        assert!(
            !report.has_errors(),
            "kernel {id:?} fails verification:\n{report}"
        );
    }
}

#[test]
fn compile_with_verification_enabled_succeeds() {
    let machine = Machine::baseline();
    let opts = CompileOptions::new().verify(true);
    for id in KernelId::ALL {
        let compiled = CompiledKernel::compile(&id.build(&machine), &machine, &opts)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(compiled.elements_per_cycle_per_cluster() > 0.0);
    }
}

#[test]
fn suite_kernels_lint_clean() {
    let machine = Machine::baseline();
    for id in KernelId::ALL {
        let kernel = id.build(&machine);
        let report = lint_kernel(&kernel);
        assert!(
            !report.has_errors(),
            "kernel {id:?} lints with errors:\n{report}"
        );
        let text_report = lint_text(&to_text(&kernel));
        assert!(
            !text_report.has_errors(),
            "kernel {id:?} text lints with errors:\n{text_report}"
        );
    }
}

#[test]
fn corrupted_schedules_are_rejected() {
    let machine = Machine::baseline();
    for id in KernelId::ALL {
        let ddg = Ddg::build(&id.build(&machine), &machine);
        let bogus = ModuloSchedule {
            ii: 1,
            times: vec![0; ddg.nodes().len()],
        };
        let report = check_schedule(&ddg, &bogus, &machine);
        assert!(report.has_errors(), "bogus schedule for {id:?} accepted");
    }
}
