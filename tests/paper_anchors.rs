//! The paper's quantitative claims as integration tests: if the
//! reproduction drifts away from the published results, these fail.

use stream_scaling::apps::AppId;
use stream_scaling::kernels::KernelId;
use stream_scaling::machine::{Machine, SystemParams};
use stream_scaling::sched::CompiledKernel;
use stream_scaling::sim::simulate;
use stream_scaling::vlsi::{calibration_anchors, CostModel, Shape};

fn harmonic_mean(values: &[f64]) -> f64 {
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Section 4: every prose anchor of the cost model holds.
#[test]
fn section4_cost_anchors() {
    let failures: Vec<String> = calibration_anchors(&CostModel::paper())
        .iter()
        .filter(|a| !a.passes())
        .map(|a| {
            format!(
                "{}: {:.4} outside [{:.3},{:.3}]",
                a.id, a.measured, a.band.0, a.band.1
            )
        })
        .collect();
    assert!(failures.is_empty(), "{failures:?}");
}

/// Abstract: "15.3x of kernel speedup ... over a 40-ALU stream processor"
/// for the 640-ALU machine, and 27.9x for 1280 ALUs. We accept the right
/// regime (double-digit speedups, 1280 > 640, both within ~2x of the paper).
#[test]
fn headline_kernel_speedups() {
    let speedup = |shape: Shape| -> f64 {
        let m0 = Machine::baseline();
        let m1 = Machine::paper(shape);
        let vals: Vec<f64> = KernelId::ALL
            .iter()
            .map(|&id| {
                let k0 = CompiledKernel::compile_default(&id.build(&m0), &m0).unwrap();
                let k1 = CompiledKernel::compile_default(&id.build(&m1), &m1).unwrap();
                k1.elements_per_cycle() / k0.elements_per_cycle()
            })
            .collect();
        harmonic_mean(&vals)
    };
    let k640 = speedup(Shape::HEADLINE_640);
    let k1280 = speedup(Shape::HEADLINE_1280);
    assert!(
        k640 > 8.0 && k640 < 20.0,
        "640-ALU kernel HM {k640} (paper 15.3)"
    );
    assert!(
        k1280 > 16.0 && k1280 < 40.0,
        "1280-ALU kernel HM {k1280} (paper 27.9)"
    );
    assert!(k1280 > k640);
}

/// Abstract/Section 5.3: application speedups in the right regime and the
/// paper's qualitative ordering (RENDER scales best; QRD and FFT1K worst;
/// FFT4K outruns FFT1K at scale despite losing on the baseline).
#[test]
fn application_speedup_shape() {
    let sys = SystemParams::paper_2007();
    let base_machine = Machine::baseline();
    let big_machine = Machine::paper(Shape::HEADLINE_1280);
    let mut speedups = std::collections::BTreeMap::new();
    let mut base_gops = std::collections::BTreeMap::new();
    let mut big_gops = std::collections::BTreeMap::new();
    for id in AppId::ALL {
        let rb = simulate(&id.program(&base_machine).program, &base_machine, &sys).unwrap();
        let rg = simulate(&id.program(&big_machine).program, &big_machine, &sys).unwrap();
        speedups.insert(id, rb.cycles as f64 / rg.cycles as f64);
        base_gops.insert(id, rb.gops(1.0));
        big_gops.insert(id, rg.gops(1.0));
    }
    // Ordering claims from Figure 15.
    assert!(speedups[&AppId::Render] > speedups[&AppId::Qrd]);
    assert!(speedups[&AppId::Render] > speedups[&AppId::Fft1k]);
    assert!(speedups[&AppId::Depth] > speedups[&AppId::Qrd]);
    assert!(speedups[&AppId::Fft4k] > speedups[&AppId::Fft1k]);
    // FFT4K loses to FFT1K on the baseline (SRF spill) but wins at scale.
    assert!(base_gops[&AppId::Fft4k] < base_gops[&AppId::Fft1k]);
    assert!(big_gops[&AppId::Fft4k] > big_gops[&AppId::Fft1k]);
    // Harmonic mean in the paper's regime (10.4x; accept 4-16).
    let hm = harmonic_mean(&speedups.values().copied().collect::<Vec<_>>());
    assert!(hm > 4.0 && hm < 16.0, "application HM {hm} (paper 10.4)");
    // Sustained GOPS at scale in the hundreds for the best apps.
    let best = big_gops.values().cloned().fold(0.0f64, f64::max);
    assert!(
        best > 150.0,
        "best app sustains {best} GOPS (paper up to 469)"
    );
}

/// Section 5.1: the N=14 configurations pay an extra pipeline stage, and
/// the intracluster kernel harmonic mean saturates relative to linear.
#[test]
fn intracluster_saturation() {
    let m14 = Machine::paper(Shape::new(8, 14));
    assert_eq!(m14.extra_intracluster_stages(), 1);
    let speedup = |n: u32| -> f64 {
        let m0 = Machine::baseline();
        let m1 = Machine::paper(Shape::new(8, n));
        let vals: Vec<f64> = KernelId::ALL
            .iter()
            .map(|&id| {
                let k0 = CompiledKernel::compile_default(&id.build(&m0), &m0).unwrap();
                let k1 = CompiledKernel::compile_default(&id.build(&m1), &m1).unwrap();
                k1.elements_per_cycle_per_cluster() / k0.elements_per_cycle_per_cluster()
            })
            .collect();
        harmonic_mean(&vals)
    };
    let s10 = speedup(10);
    let s14 = speedup(14);
    assert!(s10 > 1.6 && s10 < 2.2, "N=10 HM {s10} (near-linear 2.0)");
    // Sub-linear at N=14: below 14/5 = 2.8.
    assert!(s14 < 2.8, "N=14 HM {s14} should saturate below linear");
}

/// Table 5's normalization direction: performance per unit area is best at
/// small N and degrades with intracluster scaling.
#[test]
fn perf_per_area_degrades_with_n() {
    let eff = |n: u32| -> f64 {
        let machine = Machine::paper(Shape::new(8, n));
        let alu_unit = machine.cost().area.cluster.alus / f64::from(n);
        let vals: Vec<f64> = KernelId::ALL
            .iter()
            .map(|&id| {
                let k = CompiledKernel::compile_default(&id.build(&machine), &machine).unwrap();
                k.alu_ops_per_cycle() / (machine.cost().area.total() / alu_unit)
            })
            .collect();
        harmonic_mean(&vals)
    };
    let e5 = eff(5);
    let e14 = eff(14);
    assert!(e5 > e14, "N=5 ({e5:.3}) should beat N=14 ({e14:.3})");
}

/// Conclusion: the 1280-ALU machine's peak is >1 Teraop/s (1280 ops/cycle
/// at 1 GHz) and the best kernel sustains a large fraction of it.
#[test]
fn teraop_machine_sustains() {
    let m = Machine::paper(Shape::HEADLINE_1280);
    assert_eq!(m.shape().total_alus(), 1280);
    let best = KernelId::ALL
        .iter()
        .map(|&id| {
            CompiledKernel::compile_default(&id.build(&m), &m)
                .unwrap()
                .alu_ops_per_cycle()
        })
        .fold(0.0f64, f64::max);
    // > 300 GOPS sustained on kernels (the abstract's claim for 640 ALUs).
    assert!(best > 300.0, "best kernel sustains {best:.0} ops/cycle");
}
