//! Cross-crate integration tests: the full pipeline from kernel source to
//! simulated application, exercised the way a user of the library would.

use stream_scaling::apps::{self, AppId};
use stream_scaling::ir::{execute, ExecConfig, KernelBuilder, Scalar, Ty};
use stream_scaling::kernels::KernelId;
use stream_scaling::machine::{Machine, SystemParams};
use stream_scaling::sched::CompiledKernel;
use stream_scaling::sim::{simulate, ProgramBuilder};
use stream_scaling::vlsi::Shape;

/// Build a kernel, verify it functionally, compile it, wrap it in a stream
/// program, and simulate — the quickstart path end to end.
#[test]
fn write_verify_compile_simulate() {
    let mut b = KernelBuilder::new("gain_offset");
    let s = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    let gain = b.param(Ty::F32);
    let offset = b.param(Ty::F32);
    let x = b.read(s);
    let gx = b.mul(gain, x);
    let y = b.add(gx, offset);
    b.write(out, y);
    let kernel = b.finish().expect("valid kernel");

    // Functional.
    let input: Vec<Scalar> = (0..64).map(|i| Scalar::F32(i as f32)).collect();
    let outs = execute(
        &kernel,
        &[Scalar::F32(2.0), Scalar::F32(1.0)],
        &[input],
        &ExecConfig::with_clusters(8),
    )
    .expect("executes");
    assert_eq!(outs[0][10], Scalar::F32(21.0));

    // Compile and simulate on three machines.
    let sys = SystemParams::paper_2007();
    let mut last_cycles = u64::MAX;
    for shape in [Shape::new(8, 5), Shape::new(32, 5), Shape::new(128, 10)] {
        let machine = Machine::paper(shape);
        let compiled = CompiledKernel::compile_default(&kernel, &machine).expect("schedules");
        // Sized so input + output fit the baseline machine's 44k-word SRF.
        let n = 1 << 14;
        let mut p = ProgramBuilder::new();
        let data = p.load("in", n);
        let o = p.kernel(&compiled, &[data], &[n], n);
        p.store(o[0]);
        let r = simulate(&p.finish(), &machine, &sys).expect("simulates");
        assert!(r.cycles > 0);
        assert!(r.cycles <= last_cycles, "bigger machine slower at {shape}");
        last_cycles = r.cycles;
    }
}

/// Every suite kernel compiles on every Figure 13/14 machine and its
/// inner-loop rate never decreases when clusters are added.
#[test]
fn suite_kernels_compile_everywhere_and_scale() {
    for id in KernelId::ALL {
        let mut last = 0.0f64;
        for &c in &[8u32, 16, 32, 64, 128] {
            let machine = Machine::paper(Shape::new(c, 5));
            let compiled = CompiledKernel::compile_default(&id.build(&machine), &machine)
                .unwrap_or_else(|e| panic!("{id} at C={c}: {e}"));
            let rate = compiled.elements_per_cycle();
            assert!(rate >= last, "{id}: rate dropped at C={c}");
            last = rate;
        }
    }
}

/// Functional application results match their scalar references at small
/// scale on two different SIMD widths.
#[test]
fn applications_verify_functionally() {
    // CONV
    let cfg = apps::conv::Config::small();
    let (s, e) = apps::conv::run_functional(&cfg, 8);
    let (rs, re) = apps::conv::reference(&cfg, 8);
    assert_eq!(s.len(), rs.len());
    for i in 0..s.len() {
        assert!((s[i] - rs[i]).abs() < 1e-3 * (1.0 + rs[i].abs()));
        assert!((e[i] - re[i]).abs() < 1e-3 * (1.0 + re[i].abs()));
    }
    // DEPTH (bit exact, integer)
    let cfg = apps::depth::Config::small();
    assert_eq!(
        apps::depth::run_functional(&cfg, 8),
        apps::depth::reference(&cfg, 8)
    );
    // RENDER
    let cfg = apps::render::Config::small();
    let got = apps::render::run_functional(&cfg, 4);
    let want = apps::render::reference(&cfg, 4);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()));
    }
}

/// All six paper-scale applications simulate on the paper's extreme
/// machines, and the cluster array is the busiest resource on at least the
/// compute-bound ones.
#[test]
fn paper_scale_apps_simulate_on_extremes() {
    let sys = SystemParams::paper_2007();
    for shape in [Shape::BASELINE, Shape::HEADLINE_1280] {
        let machine = Machine::paper(shape);
        for id in AppId::ALL {
            let app = id.program(&machine);
            let r = simulate(&app.program, &machine, &sys)
                .unwrap_or_else(|e| panic!("{id} at {shape}: {e}"));
            assert!(r.cycles > 0);
            assert!(r.peak_srf_words <= machine.srf_total_words());
        }
    }
    // DEPTH on the baseline is kernel-bound.
    let m = Machine::baseline();
    let r = simulate(&AppId::Depth.program(&m).program, &m, &sys).unwrap();
    assert!(r.cluster_utilization() > 0.8);
}

/// The QRD pipeline is numerically sound end to end: R reproduces the f64
/// reference and annihilates the subdiagonal.
#[test]
fn qrd_numerics_hold_up() {
    let cfg = apps::qrd::Config { rows: 24, cols: 16 };
    let got = apps::qrd::run_functional(&cfg, 4);
    let want = apps::qrd::reference(&cfg);
    for k in 0..cfg.cols {
        for r in 0..=k.min(cfg.rows - 1) {
            let g = f64::from(got[k][r]);
            assert!(
                (g - want[k][r]).abs() < 2e-2 * (1.0 + want[k][r].abs()),
                "R[{r},{k}]"
            );
        }
        for (r, v) in got[k].iter().enumerate().skip(k + 1) {
            assert!(v.abs() < 1e-2, "subdiagonal [{r},{k}]");
        }
    }
}

/// Machine elaboration is consistent with the cost model it embeds.
#[test]
fn machine_and_cost_model_agree() {
    for shape in [Shape::new(8, 5), Shape::new(64, 10), Shape::new(128, 14)] {
        let machine = Machine::paper(shape);
        let cost = machine.cost();
        assert_eq!(cost.shape(), shape);
        assert_eq!(
            machine.intercluster_cycles(),
            cost.delay.intercluster_cycles()
        );
        assert_eq!(
            machine.extra_intracluster_stages(),
            cost.delay.extra_intracluster_stages()
        );
    }
}
