//! Exhaustive concurrency models for the workspace's three lock-free
//! protocols, run under the loom-shim interleaving explorer (DESIGN.md §12):
//!
//! 1. the permit pool's take/give CAS loop (the *real* `stream-pool` code —
//!    the root dev-dependency enables its `model` feature, so these tests
//!    run in the tier-1 suite without flags),
//! 2. strip reassembly: disjoint per-strip result slots plus first-error
//!    selection by minimum failing iteration (`crates/ir/src/tape/exec.rs`),
//! 3. compiled-kernel cache insertion: publish-once slots where racing
//!    compilers agree on a single published value
//!    (`crates/grid/src/cache.rs`).
//!
//! The strip and cache protocols are modeled abstractly (their production
//! code uses scoped borrows and `OnceLock`, which the shim does not
//! intercept); the models encode the same decision structure — who writes
//! which slot, who publishes first — and prove the invariants hold in every
//! schedule, not just the ones the OS happens to produce.

use loom_shim::sync::atomic::{AtomicUsize, Ordering};
use loom_shim::thread;
use std::sync::Arc;
use stream_pool::PermitPool;

/// The strip runner's permit protocol: the coordinator takes up to
/// `strips - 1` extra permits while another parallel region races it for
/// the same pool, then gives them back. Every interleaving must keep the
/// grant within capacity and restore the pool.
#[test]
fn permit_pool_take_give_is_linearizable() {
    let executions = loom_shim::model(|| {
        let pool = Arc::new(PermitPool::new(2));
        let other_region = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let got = pool.take(1);
                pool.give(got);
                got
            })
        };
        let got = pool.take(2);
        pool.give(got);
        let other = other_region.join();
        assert!(got <= 2 && other <= 1);
        assert_eq!(pool.available(), 2, "permits leaked or double-freed");
    });
    assert!(executions > 1);
}

/// Strip reassembly: each worker owns one result slot (disjointness is by
/// construction, as in the scoped-slice split) and contributes its failing
/// iteration, if any, via an atomic min. In every schedule the reassembled
/// output is complete and the reported error is the *earliest* iteration —
/// exactly what the serial schedule would hit first, which is what keeps
/// `repro` output identical at any `--jobs`.
#[test]
fn strip_reassembly_reports_the_earliest_error_in_every_schedule() {
    const NO_ERROR: usize = usize::MAX;
    loom_shim::model(|| {
        // Worker 0 covers iterations [0,4) and fails at 3; worker 1 covers
        // [4,8) and fails at 5. Earliest must always win.
        let slots: Arc<Vec<AtomicUsize>> = Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
        let first_error = Arc::new(AtomicUsize::new(NO_ERROR));
        let handles: Vec<_> = [(0usize, 3usize), (1usize, 5usize)]
            .into_iter()
            .map(|(strip, failing_iter)| {
                let slots = Arc::clone(&slots);
                let first_error = Arc::clone(&first_error);
                thread::spawn(move || {
                    // Disjoint write: this worker's own slot only.
                    slots[strip].store(strip + 1, Ordering::SeqCst);
                    first_error.fetch_min(failing_iter, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(slots[0].load(Ordering::SeqCst), 1);
        assert_eq!(slots[1].load(Ordering::SeqCst), 2);
        assert_eq!(
            first_error.load(Ordering::SeqCst),
            3,
            "error selection must be schedule-invariant"
        );
    });
}

/// Cache insertion: two compilers race to publish a slot that must only
/// ever hold one value (the `OnceLock` in `KernelCache`). Exactly one
/// publish wins in every schedule, and both threads subsequently observe
/// the winner — never a torn or second value.
#[test]
fn cache_publish_is_once_only_in_every_schedule() {
    const EMPTY: usize = 0;
    loom_shim::model(|| {
        let slot = Arc::new(AtomicUsize::new(EMPTY));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = [1usize, 2usize]
            .into_iter()
            .map(|compiled| {
                let slot = Arc::clone(&slot);
                let wins = Arc::clone(&wins);
                thread::spawn(move || {
                    match slot.compare_exchange(EMPTY, compiled, Ordering::SeqCst, Ordering::SeqCst)
                    {
                        Ok(_) => {
                            wins.fetch_add(1, Ordering::SeqCst);
                            compiled
                        }
                        Err(existing) => existing,
                    }
                })
            })
            .collect();
        let seen: Vec<usize> = handles.into_iter().map(|h| h.join()).collect();
        let winner = slot.load(Ordering::SeqCst);
        assert_eq!(wins.load(Ordering::SeqCst), 1, "publish must be once-only");
        assert!(winner == 1 || winner == 2);
        for s in seen {
            assert_eq!(s, winner, "a racer observed a non-winning value");
        }
    });
}
