//! End-to-end flight-recorder test: a crashing process leaves a loadable
//! Chrome-trace dump behind.
//!
//! The test binary re-enters itself as a child (the same pattern
//! `stream-store` uses for its two-process writer test): the child enables
//! the flight recorder, arms the panic dump, does some real sweep work, and
//! panics mid-flight. The parent asserts the child died, the dump exists,
//! and the dump parses as valid Chrome trace-event JSON containing the
//! spans the child recorded *before* anyone knew a crash was coming — the
//! whole point of an always-on recorder.

use stream_serve::json::{self, Value};

/// Env-var knob letting this test binary re-enter itself as the crashing
/// child. Holds the dump path.
const PANIC_ENV: &str = "STREAM_FLIGHT_PANIC_DUMP";

#[test]
fn a_panicking_process_leaves_a_loadable_flight_dump() {
    if let Ok(dump) = std::env::var(PANIC_ENV) {
        // Child mode: record real work with tracing off, then crash.
        stream_trace::enable_flight_recorder();
        stream_trace::install_panic_dump(std::path::Path::new(&dump));
        assert!(!stream_trace::enabled(), "tracing itself must stay off");
        let engine = stream_grid::Engine::new(2);
        let sweep = engine.map(vec![1u64, 2, 3, 4], |x| x * x);
        assert_eq!(sweep.results, vec![1, 4, 9, 16]);
        {
            let mut span = stream_trace::span("flight-test", "before-crash");
            span.arg("marker", "sentinel-7");
        }
        panic!("deliberate crash for the flight-recorder test");
    }

    let dir = std::env::temp_dir().join(format!("stream-flight-panic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight.json");
    let exe = std::env::current_exe().unwrap();
    let output = std::process::Command::new(&exe)
        .args([
            "a_panicking_process_leaves_a_loadable_flight_dump",
            "--exact",
        ])
        .env(PANIC_ENV, &dump)
        .output()
        .expect("spawn crashing child");
    assert!(
        !output.status.success(),
        "child was supposed to panic, got: {}",
        String::from_utf8_lossy(&output.stdout)
    );

    let raw = std::fs::read_to_string(&dump).expect("panic hook wrote the flight dump");
    let doc = json::parse(&raw).expect("dump is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("dump has a traceEvents array");
    // The metadata record plus at least the sentinel span.
    assert!(events.len() >= 2, "dump too small: {} events", events.len());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(
        names.contains(&"before-crash"),
        "sentinel span missing from dump; got {names:?}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
