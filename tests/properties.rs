//! Property-based tests (proptest) over the core invariants:
//! schedule legality, unroll semantics, stream scatter/gather, FFT
//! mathematics, and interpreter determinism.

use proptest::prelude::*;
use stream_scaling::grid::KernelCache;
use stream_scaling::ir::{
    execute, execute_with_legacy, parse_kernel, to_text, unroll, ExecConfig, ExecOptions, Kernel,
    KernelBuilder, NativeMode, Scalar, StripMode, Tape, TapeConfig, Ty, ValueId,
};
use stream_scaling::kernels::fft::{dft_reference, fft_reference, C32};
use stream_scaling::kernels::split::{gather_words, max_chain, scatter_words, split_plan};
use stream_scaling::machine::Machine;
use stream_scaling::sched::{
    check_schedule, modulo_schedule, CompileOptions, CompiledKernel, Ddg, MiiBounds,
};
use stream_scaling::vlsi::Shape;

/// Builds a random elementwise kernel from a byte script: two input
/// streams, a chain of arithmetic ops over previously defined values, one
/// output.
fn elementwise_kernel(script: &[u8]) -> Kernel {
    let mut b = KernelBuilder::new("random_elementwise");
    let s0 = b.in_stream(Ty::F32);
    let s1 = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    let mut vals: Vec<ValueId> = vec![b.read(s0), b.read(s1)];
    for (i, &op) in script.iter().enumerate() {
        let a = vals[(op as usize / 7) % vals.len()];
        let c = vals[(op as usize / 3) % vals.len()];
        let v = match op % 6 {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.min(a, c),
            4 => b.max(a, c),
            _ => {
                let k = b.const_f(1.0 + (i as f32));
                b.add(a, k)
            }
        };
        vals.push(v);
    }
    let last = *vals.last().expect("nonempty");
    b.write(out, last);
    b.finish().expect("structurally valid")
}

/// A random kernel with loop-carried and memory structure, for scheduler
/// stress: recurrences, scratchpad traffic, COMM ops.
fn structured_kernel(script: &[u8], clusters: u32) -> Kernel {
    let mut b = KernelBuilder::new("random_structured");
    let s0 = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    b.require_sp(8);
    let acc = b.recurrence(Scalar::F32(0.0));
    let mut vals: Vec<ValueId> = vec![b.read(s0), acc];
    for &op in script {
        let a = vals[(op as usize / 5) % vals.len()];
        let c = vals[(op as usize / 11) % vals.len()];
        let v = match op % 8 {
            0 => b.add(a, c),
            1 => b.mul(a, c),
            2 => b.sub(a, c),
            3 => {
                let addr = b.const_i(i32::from(op % 8));
                b.sp_write(addr, a);
                b.sp_read(addr, Ty::F32)
            }
            4 => {
                let cid = b.cluster_id();
                let mask = b.const_i(clusters as i32 - 1);
                let one = b.const_i(1);
                let next = b.add(cid, one);
                let src = b.and(next, mask);
                b.comm(a, src)
            }
            5 => b.min(a, c),
            6 => b.max(a, c),
            _ => {
                let k = b.const_f(0.5);
                b.mul(a, k)
            }
        };
        vals.push(v);
    }
    let last = *vals.last().expect("nonempty");
    let next_acc = b.add(last, last);
    b.bind_next(acc, next_acc);
    b.write(out, next_acc);
    b.finish().expect("structurally valid")
}

/// A random kernel exercising conditional streams: a data-dependent
/// predicate gates a conditional input read and a conditional output
/// write, so output length varies with the data.
fn condstream_kernel(script: &[u8]) -> Kernel {
    let mut b = KernelBuilder::new("random_condstream");
    let s0 = b.in_stream(Ty::I32);
    let s1 = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let x = b.read(s0);
    let one = b.const_i(1);
    let pred = b.and(x, one);
    let y = b.cond_read(s1, pred);
    let mut vals: Vec<ValueId> = vec![x, y, pred];
    for &op in script {
        let a = vals[(op as usize / 7) % vals.len()];
        let c = vals[(op as usize / 3) % vals.len()];
        let v = match op % 6 {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.xor(a, c),
            4 => b.min(a, c),
            _ => b.max(a, c),
        };
        vals.push(v);
    }
    let last = *vals.last().expect("nonempty");
    b.cond_write(out, pred, last);
    b.finish().expect("structurally valid")
}

/// Collapses interpreter outputs to `(type, bits)` words so comparisons
/// are exact even for NaN and -0.0.
fn output_bits(outs: Vec<Vec<Scalar>>) -> Vec<Vec<(Ty, u32)>> {
    outs.into_iter()
        .map(|s| {
            s.into_iter()
                .map(|w| match w {
                    Scalar::I32(v) => (Ty::I32, v as u32),
                    Scalar::F32(v) => (Ty::F32, v.to_bits()),
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The compiled execution tape is observationally identical to the
    /// legacy tree-walk interpreter on every execution path — the v1
    /// baseline (no fusion, generic lanes, serial), the default v2
    /// configuration (fused superinstructions plus lane-specialized
    /// dispatch), and forced strip-parallel execution — for random valid
    /// kernels (with and without recurrences and conditional streams),
    /// random inputs, and C in {1, 3, 4, 8, 16}: same outputs (bit for
    /// bit) and identical `IrError` values when the inputs are truncated.
    #[test]
    fn tape_matches_legacy_interpreter(
        script in proptest::collection::vec(any::<u8>(), 1..32),
        kind in 0u8..3,
        clusters in prop_oneof![Just(1usize), Just(3), Just(4), Just(8), Just(16)],
        starve in any::<bool>(),
    ) {
        let k = match kind {
            0 => elementwise_kernel(&script),
            1 => structured_kernel(&script, clusters as u32),
            _ => condstream_kernel(&script),
        };
        let iters = 3usize;
        let inputs: Vec<Vec<Scalar>> = k
            .inputs()
            .iter()
            .map(|d| {
                let words = iters * clusters * d.record_width as usize;
                (0..words)
                    .map(|i| match d.ty {
                        Ty::I32 => Scalar::I32((i as i32 * 37) % 101 - 50),
                        Ty::F32 => Scalar::F32(i as f32 * 0.375 - 4.0),
                    })
                    .collect()
            })
            .collect();
        let cfg = ExecConfig::with_clusters(clusters);
        // `starve` demands more iterations than the inputs supply, so every
        // path must fail with the same StreamExhausted error; otherwise the
        // iteration count is inferred and every path must succeed.
        let opts = ExecOptions {
            iterations: starve.then_some(iters + 2),
            ..ExecOptions::default()
        };
        let legacy = execute_with_legacy(&k, &opts, &inputs, &cfg).map(output_bits);
        let v1 = Tape::compile_with(&k, TapeConfig::v1_baseline())
            .execute_with(&opts, &inputs, &cfg)
            .map(output_bits);
        let v2 = Tape::compile(&k).execute_with(&opts, &inputs, &cfg).map(output_bits);
        let stripped = Tape::compile(&k)
            .with_strip_mode(StripMode::Force)
            .execute_with(&opts, &inputs, &cfg)
            .map(output_bits);
        let planar = Tape::compile_with(
            &k,
            TapeConfig {
                planar: true,
                ..TapeConfig::default()
            },
        )
        .execute_with(&opts, &inputs, &cfg)
        .map(output_bits);
        prop_assert_eq!(&legacy, &v1);
        prop_assert_eq!(&legacy, &v2);
        prop_assert_eq!(&legacy, &stripped);
        prop_assert_eq!(&legacy, &planar);
    }

    /// Every tape configuration on the auto-tuner's tier axis
    /// (`tune::TapeTier::ALL` × the native policy — exactly the configs
    /// `tune_app` can select as winners) is observationally identical to
    /// the legacy tree-walk interpreter on random valid kernels and random
    /// inputs: a tuning winner may change cycle counts, never results.
    #[test]
    fn tuner_tape_tiers_match_legacy_interpreter(
        script in proptest::collection::vec(any::<u8>(), 1..24),
        kind in 0u8..3,
        clusters in prop_oneof![Just(1usize), Just(4), Just(8)],
    ) {
        let k = match kind {
            0 => elementwise_kernel(&script),
            1 => structured_kernel(&script, clusters as u32),
            _ => condstream_kernel(&script),
        };
        let iters = 3usize;
        let inputs: Vec<Vec<Scalar>> = k
            .inputs()
            .iter()
            .map(|d| {
                let words = iters * clusters * d.record_width as usize;
                (0..words)
                    .map(|i| match d.ty {
                        Ty::I32 => Scalar::I32((i as i32 * 29) % 89 - 44),
                        Ty::F32 => Scalar::F32(i as f32 * 0.25 - 3.0),
                    })
                    .collect()
            })
            .collect();
        let cfg = ExecConfig::with_clusters(clusters);
        let opts = ExecOptions::default();
        let legacy = execute_with_legacy(&k, &opts, &inputs, &cfg).map(output_bits);
        for tier in stream_scaling::tune::TapeTier::ALL {
            for native_auto in [false, true] {
                let got = Tape::compile_with(&k, tier.config(native_auto))
                    .execute_with(&opts, &inputs, &cfg)
                    .map(output_bits);
                prop_assert_eq!(
                    &legacy,
                    &got,
                    "tier {} native_auto={} diverged from the legacy interpreter",
                    tier.name(),
                    native_auto
                );
            }
        }
    }

    /// The translation validator accepts every tape the compiler produces
    /// for random valid kernels — under the v1 baseline, the fused default,
    /// and the planar layout — and every validator-accepted tape is
    /// observationally bit-exact against the legacy tree-walk interpreter.
    /// This is the soundness contract from the other side: acceptance is
    /// not vacuous (trunk tapes pass) and acceptance implies equivalence
    /// on real inputs, not just symbolically.
    #[test]
    fn validated_tapes_are_bit_exact(
        script in proptest::collection::vec(any::<u8>(), 1..32),
        kind in 0u8..3,
        clusters in prop_oneof![Just(1usize), Just(4), Just(8)],
    ) {
        use stream_scaling::tapecheck::validate_tape;
        // Native modules are bit-exact at every LLVM opt level; -O0 builds
        // these large random bodies ~15x faster than the -O3 default.
        std::env::set_var("STREAM_TAPE_NATIVE_OPT", "0");
        let k = match kind {
            0 => elementwise_kernel(&script),
            1 => structured_kernel(&script, clusters as u32),
            _ => condstream_kernel(&script),
        };
        let iters = 4usize;
        let inputs: Vec<Vec<Scalar>> = k
            .inputs()
            .iter()
            .map(|d| {
                let words = iters * clusters * d.record_width as usize;
                (0..words)
                    .map(|i| match d.ty {
                        Ty::I32 => Scalar::I32((i as i32 * 13) % 97 - 48),
                        Ty::F32 => Scalar::F32(i as f32 * 0.5 - 6.0),
                    })
                    .collect()
            })
            .collect();
        let cfg = ExecConfig::with_clusters(clusters);
        let opts = ExecOptions::default();
        let legacy = execute_with_legacy(&k, &opts, &inputs, &cfg).map(output_bits);
        for config in [
            TapeConfig::v1_baseline(),
            TapeConfig::default(),
            TapeConfig { planar: true, ..TapeConfig::default() },
            TapeConfig { native: NativeMode::Force, ..TapeConfig::default() },
        ] {
            let tape = Tape::compile_with(&k, config);
            let report = validate_tape(&tape);
            prop_assert!(
                !report.has_errors(),
                "validator rejected a trunk compile:\n{report}"
            );
            let got = tape.execute_with(&opts, &inputs, &cfg).map(output_bits);
            prop_assert_eq!(&legacy, &got);
        }
    }

    /// Unrolling never changes what an elementwise kernel computes.
    #[test]
    fn unroll_preserves_elementwise_semantics(
        script in proptest::collection::vec(any::<u8>(), 1..24),
        factor in 2u32..=4,
        lanes in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let k = elementwise_kernel(&script);
        let n = 8 * factor as usize * lanes;
        let xs: Vec<Scalar> = (0..n).map(|i| Scalar::F32(i as f32 * 0.25 - 3.0)).collect();
        let ys: Vec<Scalar> = (0..n).map(|i| Scalar::F32(10.0 - i as f32 * 0.5)).collect();
        let cfg = ExecConfig::with_clusters(lanes);
        let base = execute(&k, &[], &[xs.clone(), ys.clone()], &cfg).unwrap();
        let u = unroll(&k, factor).unwrap();
        let got = execute(&u, &[], &[xs, ys], &cfg).unwrap();
        prop_assert_eq!(base, got);
    }

    /// Every modulo schedule the scheduler produces is legal: dependences
    /// respected and no resource oversubscribed, and II >= max(ResMII,
    /// RecMII).
    #[test]
    fn modulo_schedules_are_legal(
        script in proptest::collection::vec(any::<u8>(), 1..40),
        n_alus in prop_oneof![Just(2u32), Just(5), Just(10), Just(14)],
    ) {
        let machine = Machine::paper(Shape::new(8, n_alus));
        let k = structured_kernel(&script, 8);
        let ddg = Ddg::build(&k, &machine);
        let (sched, bounds) = modulo_schedule(&ddg, &machine).expect("schedulable");
        prop_assert_eq!(sched.verify(&ddg, &machine), Ok(()));
        prop_assert!(sched.ii >= MiiBounds::compute(&ddg, &machine).mii());
        prop_assert!(sched.ii >= bounds.res_mii && sched.ii >= bounds.rec_mii);
    }

    /// Compilation respects the LRF register budget.
    #[test]
    fn compiled_kernels_respect_registers(
        script in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let machine = Machine::baseline();
        let k = structured_kernel(&script, 8);
        let c = CompiledKernel::compile_default(&k, &machine).expect("compiles");
        prop_assert!(c.registers() <= machine.register_capacity());
        prop_assert!(c.elements_per_cycle_per_cluster() > 0.0);
    }

    /// A compiled kernel served from the shared cache is the same artifact
    /// a fresh compile produces, and it still passes the independent
    /// schedule verifier — caching never changes what the scheduler built.
    #[test]
    fn cached_compiles_match_fresh_compiles(
        script in proptest::collection::vec(any::<u8>(), 1..32),
        n_alus in prop_oneof![Just(2u32), Just(5), Just(10)],
    ) {
        let machine = Machine::paper(Shape::new(8, n_alus));
        let k = structured_kernel(&script, 8);
        let opts = CompileOptions::default();
        let cache = KernelCache::new();
        let first = cache.get_or_compile(&k, &machine, &opts).expect("compiles");
        let again = cache.get_or_compile(&k, &machine, &opts).expect("compiles");
        prop_assert!(std::sync::Arc::ptr_eq(&first, &again));
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.entries, 1);
        let fresh = CompiledKernel::compile(&k, &machine, &opts).expect("compiles");
        prop_assert_eq!(first.ii(), fresh.ii());
        prop_assert_eq!(first.unroll_factor(), fresh.unroll_factor());
        prop_assert_eq!(first.schedule_length(), fresh.schedule_length());
        prop_assert_eq!(first.registers(), fresh.registers());
        prop_assert_eq!(first.listing(), fresh.listing());
        let report = check_schedule(first.ddg(), first.schedule(), &machine);
        prop_assert!(!report.has_errors(), "cached schedule fails verification:\n{report}");
    }

    /// Stream scatter/gather round-trips for every width/split combination.
    #[test]
    fn scatter_gather_round_trip(
        records in 1usize..24,
        width in 1u32..12,
        k in 1u32..12,
    ) {
        let words: Vec<Scalar> = (0..records * width as usize)
            .map(|i| Scalar::I32(i as i32))
            .collect();
        let split = scatter_words(&words, width, k);
        prop_assert_eq!(split.len(), k as usize);
        let back = gather_words(&split, width);
        prop_assert_eq!(back, words);
    }

    /// Split plans always respect the budget and never leave a chain longer
    /// than the unsplit width.
    #[test]
    fn split_plans_respect_budget(
        widths in proptest::collection::vec(1u32..16, 1..5),
        extra in 0u32..10,
    ) {
        let budget = widths.len() as u32 + extra;
        let plan = split_plan(&widths, budget);
        prop_assert_eq!(plan.len(), widths.len());
        prop_assert!(plan.iter().sum::<u32>() <= budget);
        prop_assert!(max_chain(&widths, &plan) <= widths.iter().copied().max().unwrap());
    }

    /// FFT is linear: F(a*x + y) = a*F(x) + F(y) (up to f32 tolerance).
    #[test]
    fn fft_is_linear(seed in 0u32..1000, scale in 0.25f32..4.0) {
        let n = 64usize;
        let mk = |s: u32| -> Vec<C32> {
            (0..n)
                .map(|i| {
                    let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(s)) as f32;
                    let w = (v / u32::MAX as f32) * 2.0 - 1.0;
                    (w, -w * 0.5)
                })
                .collect()
        };
        let x = mk(seed);
        let y = mk(seed.wrapping_add(17));
        let combo: Vec<C32> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (scale * a.0 + b.0, scale * a.1 + b.1))
            .collect();
        let fx = fft_reference(&x);
        let fy = fft_reference(&y);
        let fc = fft_reference(&combo);
        for i in 0..n {
            let want = (scale * fx[i].0 + fy[i].0, scale * fx[i].1 + fy[i].1);
            prop_assert!((fc[i].0 - want.0).abs() < 2e-2 * (1.0 + want.0.abs()));
            prop_assert!((fc[i].1 - want.1).abs() < 2e-2 * (1.0 + want.1.abs()));
        }
    }

    /// Parseval: energy is preserved (scaled by n), checked against the DFT.
    #[test]
    fn fft_satisfies_parseval(seed in 0u32..1000) {
        let n = 16usize;
        let x: Vec<C32> = (0..n)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(40503).wrapping_add(seed)) % 1000;
                (v as f32 / 500.0 - 1.0, (999 - v) as f32 / 500.0 - 1.0)
            })
            .collect();
        let f = fft_reference(&x);
        let d = dft_reference(&x);
        let e_f: f32 = f.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let e_t: f32 = x.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f32>() * n as f32;
        prop_assert!((e_f - e_t).abs() < 1e-2 * (1.0 + e_t));
        for i in 0..n {
            prop_assert!((f[i].0 - d[i].0).abs() < 1e-2 * (1.0 + d[i].0.abs()));
        }
    }

    /// The interpreter is deterministic (same kernel, same data, same
    /// result), and cluster count does not change elementwise results.
    #[test]
    fn interpreter_is_deterministic(
        script in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let k = elementwise_kernel(&script);
        let xs: Vec<Scalar> = (0..32).map(|i| Scalar::F32(i as f32)).collect();
        let ys: Vec<Scalar> = (0..32).map(|i| Scalar::F32(-(i as f32))).collect();
        let a = execute(&k, &[], &[xs.clone(), ys.clone()], &ExecConfig::with_clusters(4)).unwrap();
        let b = execute(&k, &[], &[xs.clone(), ys.clone()], &ExecConfig::with_clusters(4)).unwrap();
        let c = execute(&k, &[], &[xs, ys], &ExecConfig::with_clusters(8)).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// The textual kernel format round-trips arbitrary kernels exactly.
    #[test]
    fn kernel_text_round_trips(
        script in proptest::collection::vec(any::<u8>(), 1..32),
        structured in any::<bool>(),
    ) {
        let k = if structured {
            structured_kernel(&script, 8)
        } else {
            elementwise_kernel(&script)
        };
        let text = to_text(&k);
        let back = parse_kernel(&text).unwrap();
        prop_assert_eq!(&k, &back);
        prop_assert_eq!(to_text(&back), text);
    }

    /// Cost model sanity across random shapes: positive, finite, and
    /// monotone total area in both dimensions.
    #[test]
    fn cost_model_monotone_total(c in 1u32..128, n in 1u32..64) {
        use stream_scaling::vlsi::{CostModel};
        let model = CostModel::paper();
        let base = model.evaluate(Shape::new(c, n));
        let more_c = model.evaluate(Shape::new(c + 1, n));
        let more_n = model.evaluate(Shape::new(c, n + 1));
        prop_assert!(base.area.total() > 0.0 && base.area.total().is_finite());
        prop_assert!(more_c.area.total() > base.area.total());
        prop_assert!(more_n.area.total() > base.area.total());
        prop_assert!(more_c.energy.total_per_cycle() > base.energy.total_per_cycle());
    }
}

proptest! {
    // Each fresh case costs one external `rustc` invocation (~0.5s), so
    // this block runs fewer cases than the interpreter-only properties;
    // the module registry dedupes repeat scripts by source fingerprint.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The native (tier-3) backend is observationally identical to the
    /// legacy tree-walk interpreter for random valid kernels — with
    /// recurrences, scratchpad traffic, COMM, and conditional streams —
    /// at C in {1, 3, 4, 8, 16}, serially and under forced strip
    /// parallelism (which shares the serially-built module), on both
    /// successful runs and starved-input error runs.
    #[test]
    fn native_tier_matches_legacy_interpreter(
        script in proptest::collection::vec(any::<u8>(), 1..32),
        kind in 0u8..3,
        clusters in prop_oneof![Just(1usize), Just(3), Just(4), Just(8), Just(16)],
        starve in any::<bool>(),
    ) {
        // Bit-exactness is opt-level independent; -O0 keeps each fresh
        // case's build in the low hundreds of milliseconds.
        std::env::set_var("STREAM_TAPE_NATIVE_OPT", "0");
        let k = match kind {
            0 => elementwise_kernel(&script),
            1 => structured_kernel(&script, clusters as u32),
            _ => condstream_kernel(&script),
        };
        let iters = 3usize;
        let inputs: Vec<Vec<Scalar>> = k
            .inputs()
            .iter()
            .map(|d| {
                let words = iters * clusters * d.record_width as usize;
                (0..words)
                    .map(|i| match d.ty {
                        Ty::I32 => Scalar::I32((i as i32 * 37) % 101 - 50),
                        Ty::F32 => Scalar::F32(i as f32 * 0.375 - 4.0),
                    })
                    .collect()
            })
            .collect();
        let cfg = ExecConfig::with_clusters(clusters);
        let opts = ExecOptions {
            iterations: starve.then_some(iters + 2),
            ..ExecOptions::default()
        };
        let legacy = execute_with_legacy(&k, &opts, &inputs, &cfg).map(output_bits);
        let tape = Tape::compile(&k).with_native_mode(NativeMode::Force);
        let striped = tape.clone().with_strip_mode(StripMode::Force);
        let native = tape.execute_with(&opts, &inputs, &cfg).map(output_bits);
        let native_strips = striped.execute_with(&opts, &inputs, &cfg).map(output_bits);
        prop_assert_eq!(&legacy, &native);
        prop_assert_eq!(&legacy, &native_strips);
    }
}

/// Every suite kernel round-trips through the textual format on every
/// paper machine (deterministic companion to the property above).
#[test]
fn suite_kernels_round_trip_as_text() {
    use stream_scaling::kernels::KernelId;
    for &(c, n) in &[(8u32, 5u32), (128, 10)] {
        let machine = Machine::paper(Shape::new(c, n));
        for id in KernelId::ALL {
            let k = id.build(&machine);
            let back = parse_kernel(&to_text(&k)).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(k, back, "{id} at C={c} N={n}");
        }
    }
}
